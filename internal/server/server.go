// Package server implements gpmd's HTTP/JSON service layer: named data
// graphs bound into concurrency-safe gpm.Engines, every matching
// semantics the module implements served to remote callers, and
// stateful watch sessions exposing incremental maintenance over the
// wire.
//
// Endpoints (wire schema in package gpm/client, shared with the typed
// Go client so the two cannot drift):
//
//	POST   /match       bounded simulation (the paper's cubic Match)
//	POST   /simulate    plain graph simulation
//	POST   /dual        dual simulation (Ma et al. VLDB 2012)
//	POST   /strong      strong simulation
//	POST   /enumerate   subgraph-isomorphism embeddings (VF2/Ullmann)
//	POST   /count       embedding count (planner symmetry + incl-excl)
//	POST   /batch       bounded simulation over a pattern batch
//	POST   /watch       open an incremental watch session
//	GET    /watch/{id}  snapshot a session's maintained relation
//	DELETE /watch/{id}  close a session
//	POST   /update      apply edge updates, stream per-watcher deltas
//	GET    /graphs      list bound graphs
//	GET    /stats       aggregate MatchStats across served queries
//	GET    /healthz     liveness
//
// Concurrency discipline: queries ride the engine's RWMutex read side,
// so any number of requests match concurrently against one graph;
// /update and watch open/close take the write side and exclude them.
// Every request derives its context from the client connection, the
// per-request deadline (timeout_ms, else the server default) and the
// server's base context — Close cancels the base context, so graceful
// shutdown drains in-flight fixpoints via their own cancellation
// polling instead of abandoning goroutines.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gpm"
	"gpm/client"
	"gpm/internal/pattern"
	"gpm/internal/qcache"
	"gpm/internal/wal"
)

// Config parameterises New.
type Config struct {
	// DefaultTimeout bounds requests that carry no timeout_ms of their
	// own. Zero means no default deadline.
	DefaultTimeout time.Duration
	// MaxBodyBytes caps request bodies (patterns and update batches from
	// untrusted callers). Zero means the built-in 64 MiB.
	MaxBodyBytes int64
	// WAL, when non-nil, makes the server durable: update batches and
	// watch open/close are logged before they take effect, and Checkpoint
	// snapshots every binding. Recovery must be the *wal.Recovery the same
	// wal.Open returned; Bind consults it to restore snapshotted graphs,
	// re-open watch sessions under their original ids and replay logged
	// batches.
	WAL      *wal.WAL
	Recovery *wal.Recovery
	// SnapshotEvery triggers an automatic Checkpoint once that many update
	// batches accumulate in the log (bounding replay work after a crash).
	// Zero disables automatic snapshots; Checkpoint can still be called.
	SnapshotEvery int
	// CacheBytes bounds the relation-result cache (internal/qcache):
	// relation responses are cached under (graph, update generation,
	// semantics, canonical pattern digest), and misses first try to seed
	// the fixpoint from a cached containing pattern's relation. Zero
	// disables caching. Invalidation is by generation token — effective
	// updates orphan old entries, net-no-op batches evict nothing — so
	// cached answers are always byte-identical to cold computations.
	CacheBytes int64
}

const defaultMaxBody = 64 << 20

// Server serves bound graphs over HTTP. Create with New, add graphs
// with Bind, then use it as an http.Handler.
type Server struct {
	cfg  Config
	mux  *http.ServeMux
	base context.Context
	stop context.CancelFunc

	mu       sync.RWMutex // guards bindings and sessions
	bindings map[string]*binding
	sessions map[int64]*session
	nextID   int64

	// walMu orders logged mutations against snapshots: handleUpdate,
	// handleWatchOpen and handleWatchClose hold the read side across
	// append+apply, so a Checkpoint (write side) never observes a batch
	// that is applied but unlogged or logged but unapplied. Lock order:
	// walMu before mu.
	walMu sync.RWMutex

	stats    stats
	recovery recoveryStats // written by Bind, read-only once serving

	// cache is the relation-result cache; nil when Config.CacheBytes is
	// zero. Entries key on the engine's generation token, so no update
	// path needs to flush it — handleUpdate only calls DropStale to
	// reclaim bytes from orphaned generations early.
	cache *qcache.Cache
}

// recoveryStats aggregates what startup replay did across Bind calls.
type recoveryStats struct {
	graphs   int64
	sessions int64
	batches  int64
	replayNS int64
}

// binding is one named graph served by its engine.
type binding struct {
	name string
	eng  *gpm.Engine
	// byWatcher resolves the engine's update deltas back to sessions;
	// guarded by Server.mu.
	byWatcher map[*gpm.Watcher]*session
}

// session is one open watch: an incrementally maintained match reachable
// over the wire by ID.
type session struct {
	id        int64
	b         *binding
	semantics string
	w         *gpm.Watcher
	// pattern is the canonical .pattern text (WritePattern output, not the
	// request's raw bytes), logged on open and written into snapshot
	// manifests so recovery re-opens an identical session.
	pattern string
}

// New returns an empty server; Bind graphs before serving.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBody
	}
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		base:     base,
		stop:     stop,
		bindings: make(map[string]*binding),
		sessions: make(map[int64]*session),
	}
	if cfg.CacheBytes > 0 {
		s.cache = qcache.New(cfg.CacheBytes)
	}
	if cfg.Recovery != nil {
		// Watch ids survive crashes: resume the counter past every id the
		// log ever issued so recovered and new sessions never collide.
		s.nextID = cfg.Recovery.NextID
	}
	s.routes()
	return s
}

// Bind names a graph and binds it into an engine. The graph must not be
// mutated afterwards except through /update. Bind is not safe to call
// concurrently with serving; bind every graph before the listener opens.
//
// When the server was configured with WAL recovery state, Bind restores
// the binding to its pre-crash condition: a snapshotted copy of the
// graph replaces g, every watch session that was open at crash time is
// re-opened under its original id, and the update batches logged after
// the snapshot replay through the engine — so the incrementally
// maintained relations end up identical to a process that never crashed
// (the engine's maintain-equals-recompute invariant makes watcher-first
// replay exact, not approximate).
func (s *Server) Bind(name string, g *gpm.Graph, opts ...gpm.EngineOption) error {
	if name == "" {
		return fmt.Errorf("server: empty graph name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.bindings[name]; dup {
		return fmt.Errorf("server: graph %q already bound", name)
	}
	var rec *wal.GraphState
	if s.cfg.Recovery != nil {
		rec = s.cfg.Recovery.Graphs[name]
	}
	if rec != nil && rec.Graph != nil {
		// The snapshot is the authoritative base state; the caller's g is
		// the same graph as of bind time, pre-updates.
		g = rec.Graph
	}
	b := &binding{
		name:      name,
		eng:       gpm.NewEngine(g, opts...),
		byWatcher: make(map[*gpm.Watcher]*session),
	}
	s.bindings[name] = b
	if rec == nil {
		return nil
	}
	return s.recoverBinding(b, rec)
}

// recoverBinding replays one graph's WAL state into its fresh binding:
// sessions first (watchers then absorb the replayed batches exactly as
// they absorbed the originals), then every logged batch in log order.
// Called with s.mu held, before serving starts.
func (s *Server) recoverBinding(b *binding, rec *wal.GraphState) error {
	start := time.Now()
	for _, ws := range rec.Sessions {
		p, err := gpm.ReadPattern(strings.NewReader(ws.Pattern))
		if err != nil {
			return fmt.Errorf("server: recovering watch %d on %q: bad pattern: %v", ws.ID, b.name, err)
		}
		var watcher *gpm.Watcher
		var werr error
		switch ws.Semantics {
		case "match":
			watcher, werr = b.eng.Watch(p)
		case "sim":
			watcher, werr = b.eng.WatchSim(p)
		case "dual":
			watcher, werr = b.eng.WatchDual(p)
		case "strong":
			watcher, werr = b.eng.WatchStrong(p)
		default:
			werr = fmt.Errorf("unknown semantics %q", ws.Semantics)
		}
		if werr != nil {
			return fmt.Errorf("server: recovering watch %d on %q: %v", ws.ID, b.name, werr)
		}
		sess := &session{id: ws.ID, b: b, semantics: ws.Semantics, w: watcher, pattern: ws.Pattern}
		s.sessions[sess.id] = sess
		b.byWatcher[watcher] = sess
		s.recovery.sessions++
	}
	for _, batch := range rec.Batches {
		// A batch that failed validation pre-crash fails identically here;
		// Update is deterministic, so errors are part of the replay, not a
		// recovery failure.
		b.eng.Update(batch...)
		s.recovery.batches++
	}
	s.recovery.replayNS += time.Since(start).Nanoseconds()
	s.recovery.graphs++
	return nil
}

// GraphNames lists the bound graphs sorted by name.
func (s *Server) GraphNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.bindings))
	for name := range s.bindings {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Close cancels the server's base context: every in-flight query
// fixpoint and enumeration observes the cancellation at its next poll
// and unwinds, and new watch opens and update batches are refused with
// 503, so an http.Server.Shutdown that follows drains quickly instead
// of waiting out a cubic fixpoint. (Watch initialisation and update
// cascades already in flight run to completion — those engine paths
// are not cancellable — but they are bounded by the batch, not by
// request lifetime.) Close does not close watch sessions; their state
// stays readable until the process exits.
func (s *Server) Close() { s.stop() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /match", s.relationHandler("match"))
	s.mux.HandleFunc("POST /simulate", s.relationHandler("sim"))
	s.mux.HandleFunc("POST /dual", s.relationHandler("dual"))
	s.mux.HandleFunc("POST /strong", s.relationHandler("strong"))
	s.mux.HandleFunc("POST /enumerate", s.handleEnumerate)
	s.mux.HandleFunc("POST /count", s.handleCount)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("POST /watch", s.handleWatchOpen)
	s.mux.HandleFunc("GET /watch/{id}", s.handleWatchGet)
	s.mux.HandleFunc("DELETE /watch/{id}", s.handleWatchClose)
	s.mux.HandleFunc("POST /update", s.handleUpdate)
	s.mux.HandleFunc("GET /graphs", s.handleGraphs)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
}

// httpError is an error with a status code chosen by the handler.
type httpError struct {
	code int
	err  error
}

func (e *httpError) Error() string { return e.err.Error() }

func badRequest(format string, args ...interface{}) *httpError {
	return &httpError{code: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// writeError maps an error to a JSON error response. Context errors
// become 504: the request's deadline (or the shutting-down server)
// cancelled the fixpoint. A graph bound beyond its oracle's addressing
// limit becomes 422: the request was well-formed, the binding cannot
// serve it — and, critically for a daemon, the process stays up.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		code = he.code
	case errors.Is(err, gpm.ErrGraphTooLarge):
		code = http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		code = http.StatusGatewayTimeout
	}
	s.stats.errors.Add(1)
	writeJSON(w, code, client.ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// decodeBody strictly decodes one JSON document into v.
func decodeBody(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("bad request body: %v", err)
	}
	if dec.More() {
		return badRequest("bad request body: trailing data")
	}
	return nil
}

// bindingOf resolves a graph name.
func (s *Server) bindingOf(name string) (*binding, error) {
	if name == "" {
		return nil, badRequest("missing graph name")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.bindings[name]
	if !ok {
		return nil, &httpError{code: http.StatusNotFound, err: fmt.Errorf("unknown graph %q", name)}
	}
	return b, nil
}

// parsePattern parses the .pattern text format from a request.
func parsePattern(text string) (*gpm.Pattern, error) {
	if strings.TrimSpace(text) == "" {
		return nil, badRequest("missing pattern")
	}
	p, err := gpm.ReadPattern(strings.NewReader(text))
	if err != nil {
		return nil, badRequest("bad pattern: %v", err)
	}
	return p, nil
}

// requestCtx derives the context one query runs under: the client
// connection (gone when the caller hangs up), the per-request deadline,
// and the server's base context (cancelled by Close). The returned stop
// must be called when the request finishes. A negative timeout_ms is a
// caller bug, not a request for the default: rejecting it keeps "0 or
// absent means default" the only spelling of that intent.
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc, error) {
	if timeoutMS < 0 {
		return nil, nil, badRequest("timeout_ms must be >= 0 (got %d); omit it or send 0 for the server default", timeoutMS)
	}
	ctx, cancel := context.WithCancel(r.Context())
	unhook := context.AfterFunc(s.base, cancel)
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	var cancelT context.CancelFunc = func() {}
	if timeout > 0 {
		ctx, cancelT = context.WithTimeout(ctx, timeout)
	}
	return ctx, func() {
		unhook()
		cancelT()
		cancel()
	}, nil
}

// wireStats converts engine stats to the wire schema.
func wireStats(st gpm.MatchStats) client.Stats {
	return client.Stats{
		Oracle:        st.Oracle.String(),
		OracleBuildNS: st.OracleBuild.Nanoseconds(),
		MatchTimeNS:   st.MatchTime.Nanoseconds(),
		OracleQueries: st.OracleQueries,
		Removals:      st.Removals,
		InitialPairs:  st.InitialPairs,
	}
}

// relationHandler serves the four relation-valued semantics; they share
// request decoding, deadline mapping and response shape.
func (s *Server) relationHandler(semantics string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.inFlight.Add(1)
		defer s.stats.inFlight.Add(-1)
		var req client.QueryRequest
		if err := decodeBody(r, &req); err != nil {
			s.writeError(w, err)
			return
		}
		rel, raw, err := s.relationQuery(r, semantics, req)
		if err != nil {
			s.writeError(w, err)
			return
		}
		if raw != nil {
			// A memoised hit response: already-encoded bytes, written as-is.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(raw)
			return
		}
		writeJSON(w, http.StatusOK, rel)
	}
}

// relationQuery runs one relation-valued query end to end through the
// engine's unified dispatch, fronted by the result cache: exact
// canonical-digest hits return the cached relation verbatim; on a miss
// a cached containing pattern's relation seeds the fixpoint; either way
// the response rows are byte-identical to a cold computation. A non-nil
// raw return is the complete encoded response body (a memoised hit) and
// takes precedence over the relation.
func (s *Server) relationQuery(r *http.Request, semantics string, req client.QueryRequest) (*client.Relation, []byte, error) {
	b, err := s.bindingOf(req.Graph)
	if err != nil {
		return nil, nil, err
	}
	sem, err := gpm.ParseRelSemantics(semantics)
	if err != nil {
		return nil, nil, badRequest("unknown semantics %q", semantics)
	}
	ctx, stop, err := s.requestCtx(r, req.TimeoutMS)
	if err != nil {
		return nil, nil, err
	}
	defer stop()

	// Fast path: a text whose canonical form is memoised skips the parse
	// and the canonical search; if the key then hits, the whole request is
	// a couple of map lookups. Texts only enter the memo after parsing
	// successfully, so malformed patterns still fall through to the parse
	// error below.
	var (
		key       qcache.Key
		canonText string
		cacheable bool
		gen       uint64
	)
	if s.cache != nil {
		if digest, ctext, ok := s.cache.Canon(req.Pattern); ok {
			gen = b.eng.Generation()
			key = qcache.Key{Graph: b.name, Generation: gen, Semantics: semantics, Digest: digest}
			canonText = ctext
			cacheable = true
			if rel, raw, hit := s.cacheHit(b.name, semantics, key, canonText); hit {
				return rel, raw, nil
			}
		}
	}

	p, err := parsePattern(req.Pattern)
	if err != nil {
		return nil, nil, err
	}

	// Cache probe under the graph's current generation. Patterns too
	// symmetric to canonicalise within budget are served uncached — a
	// missing key is a performance event, never a correctness one.
	if s.cache != nil && !cacheable {
		if c, cerr := p.Canonical(); cerr == nil {
			s.cache.PutCanon(req.Pattern, c.Digest, c.Text)
			gen = b.eng.Generation()
			key = qcache.Key{Graph: b.name, Generation: gen, Semantics: semantics, Digest: c.Digest}
			canonText = c.Text
			cacheable = true
			if rel, raw, hit := s.cacheHit(b.name, semantics, key, canonText); hit {
				return rel, raw, nil
			}
		}
	}

	// Containment fallback: a cached pattern that contains p (child
	// witnesses for match/sim, child+parent for dual) seeds p's fixpoint
	// with its relation rows. Strong simulation is not a plain fixpoint
	// and only benefits from exact hits.
	q := gpm.RelationQuery{Semantics: sem, Pattern: p}
	marker := ""
	if cacheable && sem != gpm.RelStrong {
		mode := pattern.ContainChild
		if sem == gpm.RelDual {
			mode = pattern.ContainDual
		}
		if seed, found := s.cache.Seed(b.name, gen, semantics, p, mode); found {
			q.Seed = seed
			marker = "containment"
		}
	}
	res, err := b.eng.RelationQuery(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	if q.Seed != nil && res.Generation != gen {
		// An update landed between the containment probe and the query:
		// the seed's superset guarantee is void. Recompute cold.
		marker = ""
		res, err = b.eng.RelationQuery(ctx, gpm.RelationQuery{Semantics: sem, Pattern: p})
		if err != nil {
			return nil, nil, err
		}
	}
	if cacheable {
		// Store under the generation the query actually observed — it is
		// exactly the graph state the relation describes.
		key.Generation = res.Generation
		s.cache.Put(key, canonText, p, res.Relation, res.OK)
	}
	rel := relationOf(b.name, semantics, res.OK, countPairs(res.Relation), res.Relation, res.Stats)
	rel.Stats.Cache = marker
	s.stats.record(semantics, rel.Stats)
	return rel, nil, nil
}

// cacheHit serves one exact cache hit. The first hit for an entry builds
// the response and memoises its encoded bytes in the cache; every later
// hit returns those bytes verbatim, skipping the JSON encode. Hit
// responses are deterministic — the graph name and semantics are part of
// the key, the rows are immutable, and the stats block carries no
// wall-clock readings — so replaying the bytes is byte-identical to
// re-encoding.
func (s *Server) cacheHit(graph, semantics string, key qcache.Key, canonText string) (*client.Relation, []byte, bool) {
	cached, wire, resOK, hit := s.cache.Get(key, canonText)
	if !hit {
		return nil, nil, false
	}
	if wire != nil {
		s.stats.record(semantics, client.Stats{Oracle: gpm.OracleNone.String(), Cache: "hit"})
		return nil, wire, true
	}
	rel := relationOf(graph, semantics, resOK, countPairs(cached), cached, gpm.MatchStats{Oracle: gpm.OracleNone})
	rel.Stats.Cache = "hit"
	if body, err := json.Marshal(rel); err == nil {
		// writeJSON goes through json.Encoder, which appends a newline;
		// match it so memoised bytes are identical to the encoded path.
		s.cache.SetWire(key, canonText, append(body, '\n'))
	}
	s.stats.record(semantics, rel.Stats)
	return rel, nil, true
}

func countPairs(rel [][]int32) int {
	pairs := 0
	for _, row := range rel {
		pairs += len(row)
	}
	return pairs
}

func relationOf(graph, semantics string, ok bool, pairs int, matches [][]int32, st gpm.MatchStats) *client.Relation {
	return &client.Relation{
		Graph:     graph,
		Semantics: semantics,
		OK:        ok,
		Pairs:     pairs,
		Matches:   matches,
		Stats:     wireStats(st),
	}
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)
	var req client.QueryRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	b, err := s.bindingOf(req.Graph)
	if err != nil {
		s.writeError(w, err)
		return
	}
	p, err := parsePattern(req.Pattern)
	if err != nil {
		s.writeError(w, err)
		return
	}
	opts := gpm.IsoOptions{MaxEmbeddings: req.MaxEmbeddings, MaxSteps: req.MaxSteps, NoPlan: req.NoPlan}
	switch req.Algo {
	case "", "vf2":
	case "ullmann":
		opts.Algo = gpm.AlgoUllmann
	default:
		s.writeError(w, badRequest("unknown algo %q (want vf2 or ullmann)", req.Algo))
		return
	}
	ctx, stop, err := s.requestCtx(r, req.TimeoutMS)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer stop()
	res, err := b.eng.Enumerate(ctx, p, opts)
	if res == nil {
		// Not even a partial enumeration: validation failure or a context
		// cancelled before the search started.
		if err == nil {
			err = fmt.Errorf("enumeration produced no result")
		}
		s.writeError(w, err)
		return
	}
	// The partial-enumeration contract: a deadline that expires
	// mid-search still yields the embeddings found so far.
	resp := client.Enumeration{
		Graph:      b.name,
		Embeddings: res.Embeddings,
		Steps:      res.Steps,
		Complete:   res.Complete,
		Stats:      wireStats(res.Stats),
	}
	if err != nil {
		resp.Truncated = err.Error()
	}
	s.stats.record("enumerate", resp.Stats)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)
	var req client.QueryRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	b, err := s.bindingOf(req.Graph)
	if err != nil {
		s.writeError(w, err)
		return
	}
	p, err := parsePattern(req.Pattern)
	if err != nil {
		s.writeError(w, err)
		return
	}
	opts := gpm.IsoOptions{MaxSteps: req.MaxSteps, NoPlan: req.NoPlan}
	switch req.Algo {
	case "", "vf2":
	case "ullmann":
		opts.Algo = gpm.AlgoUllmann
	default:
		s.writeError(w, badRequest("unknown algo %q (want vf2 or ullmann)", req.Algo))
		return
	}
	ctx, stop, err := s.requestCtx(r, req.TimeoutMS)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer stop()
	res, err := b.eng.CountEmbeddings(ctx, p, opts)
	if res == nil {
		if err == nil {
			err = fmt.Errorf("count produced no result")
		}
		s.writeError(w, err)
		return
	}
	// Same partial contract as /enumerate: a deadline that expires
	// mid-search still yields the count accumulated so far.
	resp := client.Count{
		Graph:         b.name,
		Count:         res.Count,
		Steps:         res.Steps,
		Complete:      res.Complete,
		Automorphisms: res.Automorphisms,
		Stats:         wireStats(res.Stats),
	}
	if err != nil {
		resp.Truncated = err.Error()
	}
	s.stats.record("count", resp.Stats)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)
	var req client.BatchRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	b, err := s.bindingOf(req.Graph)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Patterns) == 0 {
		s.writeError(w, badRequest("empty pattern batch"))
		return
	}
	ps := make([]*gpm.Pattern, len(req.Patterns))
	for i, text := range req.Patterns {
		p, err := parsePattern(text)
		if err != nil {
			s.writeError(w, badRequest("pattern %d: %v", i, err))
			return
		}
		ps[i] = p
	}
	ctx, stop, err := s.requestCtx(r, req.TimeoutMS)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer stop()
	results, err := b.eng.MatchBatch(ctx, ps)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := client.BatchResponse{Graph: b.name, Results: make([]client.Relation, len(results))}
	for i, res := range results {
		resp.Results[i] = *relationOf(b.name, "match", res.OK(), res.Pairs(), res.Relation(), res.Stats)
		s.stats.record("batch", resp.Results[i].Stats)
	}
	writeJSON(w, http.StatusOK, resp)
}

// checkAccepting rejects new watch/update work once Close was called:
// the engine's Watch and Update paths run uncancellable write-side
// fixpoints, so the shutdown guarantee for them is "none started after
// Close" rather than mid-flight cancellation.
func (s *Server) checkAccepting() error {
	if err := s.base.Err(); err != nil {
		return &httpError{code: http.StatusServiceUnavailable, err: fmt.Errorf("server shutting down")}
	}
	return nil
}

func (s *Server) handleWatchOpen(w http.ResponseWriter, r *http.Request) {
	var req client.WatchRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.checkAccepting(); err != nil {
		s.writeError(w, err)
		return
	}
	b, err := s.bindingOf(req.Graph)
	if err != nil {
		s.writeError(w, err)
		return
	}
	p, err := parsePattern(req.Pattern)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var watcher *gpm.Watcher
	var werr error
	switch req.Semantics {
	case "match":
		watcher, werr = b.eng.Watch(p)
	case "sim":
		watcher, werr = b.eng.WatchSim(p)
	case "dual":
		watcher, werr = b.eng.WatchDual(p)
	case "strong":
		watcher, werr = b.eng.WatchStrong(p)
	default:
		s.writeError(w, badRequest("unknown watch semantics %q (want match, sim, dual or strong)", req.Semantics))
		return
	}
	if werr != nil {
		s.writeError(w, engineError(werr))
		return
	}
	// Canonical pattern text for the WAL: recovery re-parses exactly what
	// WritePattern emits, independent of the request's formatting.
	var pb strings.Builder
	if err := gpm.WritePattern(&pb, p); err != nil {
		watcher.Close()
		s.writeError(w, fmt.Errorf("serialising pattern: %v", err))
		return
	}

	s.walMu.RLock()
	s.mu.Lock()
	// Re-check shutdown under the lock: the watcher build above can be
	// slow, and a session registered after Close has drained would outlive
	// the shutdown guarantee (and, with a WAL, be resurrected on restart).
	if s.base.Err() != nil {
		s.mu.Unlock()
		s.walMu.RUnlock()
		watcher.Close()
		s.writeError(w, &httpError{code: http.StatusServiceUnavailable, err: fmt.Errorf("server shutting down")})
		return
	}
	s.nextID++
	sess := &session{id: s.nextID, b: b, semantics: req.Semantics, w: watcher, pattern: pb.String()}
	s.sessions[sess.id] = sess
	b.byWatcher[watcher] = sess
	s.mu.Unlock()
	if s.cfg.WAL != nil {
		if err := s.cfg.WAL.AppendWatchOpen(b.name, wal.Session{ID: sess.id, Semantics: sess.semantics, Pattern: sess.pattern}); err != nil {
			// The open is not durable; undo it rather than hand out a
			// session a restart would silently forget.
			s.mu.Lock()
			delete(s.sessions, sess.id)
			delete(b.byWatcher, watcher)
			s.mu.Unlock()
			s.walMu.RUnlock()
			watcher.Close()
			s.writeError(w, fmt.Errorf("wal append: %v", err))
			return
		}
	}
	s.walMu.RUnlock()
	s.stats.watchesOpened.Add(1)
	writeJSON(w, http.StatusOK, s.watchState(sess))
}

// engineError classifies an error from the engine's watch/update write
// path. The sentinel and context errors must reach writeError unwrapped
// so they map to 422 and 504 exactly as the relation handlers report
// them; anything else is a validation failure of the request and stays
// a 400.
func engineError(err error) error {
	if errors.Is(err, gpm.ErrGraphTooLarge) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) {
		return err
	}
	return badRequest("%v", err)
}

func (s *Server) watchState(sess *session) client.WatchState {
	return client.WatchState{
		ID:        sess.id,
		Graph:     sess.b.name,
		Semantics: sess.semantics,
		OK:        sess.w.OK(),
		Pairs:     sess.w.Pairs(),
		Matches:   sess.w.Relation(),
	}
}

// sessionOf resolves a watch session from the {id} path value.
func (s *Server) sessionOf(r *http.Request) (*session, error) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		return nil, badRequest("bad watch id %q", r.PathValue("id"))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, &httpError{code: http.StatusNotFound, err: fmt.Errorf("unknown watch %d", id)}
	}
	return sess, nil
}

func (s *Server) handleWatchGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessionOf(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.watchState(sess))
}

func (s *Server) handleWatchClose(w http.ResponseWriter, r *http.Request) {
	sess, err := s.sessionOf(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.walMu.RLock()
	s.mu.Lock()
	delete(s.sessions, sess.id)
	delete(sess.b.byWatcher, sess.w)
	s.mu.Unlock()
	if s.cfg.WAL != nil {
		// Log the close so recovery doesn't resurrect the session. An
		// append failure is not worth failing the close over: replaying an
		// extra open only costs memory, not correctness.
		s.cfg.WAL.AppendWatchClose(sess.id)
	}
	s.walMu.RUnlock()
	sess.w.Close()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req client.UpdateRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.checkAccepting(); err != nil {
		s.writeError(w, err)
		return
	}
	b, err := s.bindingOf(req.Graph)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ups := make([]gpm.Update, len(req.Updates))
	for i, op := range req.Updates {
		switch op.Op {
		case "+":
			ups[i] = gpm.InsertEdge(op.U, op.V)
		case "-":
			ups[i] = gpm.DeleteEdge(op.U, op.V)
		default:
			s.writeError(w, badRequest("update %d: unknown op %q (want + or -)", i, op.Op))
			return
		}
	}
	// Log before apply: a crash between the two replays a batch the
	// in-memory engine never absorbed, which is exactly what recovery
	// redoes; the reverse order would lose an acknowledged batch. The
	// walMu read side keeps a concurrent Checkpoint from snapshotting
	// between the append and the apply.
	s.walMu.RLock()
	if s.cfg.WAL != nil {
		if err := s.cfg.WAL.AppendUpdate(b.name, ups); err != nil {
			s.walMu.RUnlock()
			s.writeError(w, fmt.Errorf("wal append: %v", err))
			return
		}
	}
	deltas, err := b.eng.Update(ups...)
	s.walMu.RUnlock()
	if err != nil {
		s.writeError(w, engineError(err))
		return
	}
	s.stats.updates.Add(1)
	s.stats.updateEdges.Add(int64(len(ups)))
	if s.cache != nil {
		// Reclaim entries the generation bump orphaned. A net-no-op batch
		// leaves the generation — and every cached answer — in place.
		s.cache.DropStale(b.name, b.eng.Generation())
	}

	// Materialise the delta lines under the registry lock, then stream
	// with the lock released: a slow or stalled reader must not hold
	// s.mu (a blocked writer behind it would stall every other request
	// on every graph).
	s.mu.RLock()
	watchers := len(b.byWatcher)
	lines := make([]client.WatchDelta, 0, len(deltas))
	for _, d := range deltas {
		sess, ok := b.byWatcher[d.Watcher]
		if !ok {
			continue // closed between Update and here
		}
		lines = append(lines, client.WatchDelta{
			WatchID:    sess.id,
			Semantics:  sess.semantics,
			OK:         d.Watcher.OK(),
			Pairs:      d.Watcher.Pairs(),
			Added:      wirePairs(d.Delta.Added),
			Removed:    wirePairs(d.Delta.Removed),
			Recomputed: d.Delta.Recomputed,
		})
	}
	s.mu.RUnlock()

	// Stream as NDJSON: header first, then one line per open session on
	// this graph, flushed as encoded so a caller maintaining many
	// sessions processes deltas as they arrive.
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	enc.Encode(client.UpdateHeader{Graph: b.name, Applied: len(ups), Watchers: watchers})
	for _, line := range lines {
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	s.maybeCheckpoint()
}

// maybeCheckpoint snapshots once enough batches accumulate in the log,
// bounding crash-recovery replay work. Runs after the update response is
// streamed so snapshot latency never sits on a request's critical path.
// A failed snapshot is retried by the next update: the log keeps
// growing, LoggedBatches stays over the threshold.
func (s *Server) maybeCheckpoint() {
	if s.cfg.WAL == nil || s.cfg.SnapshotEvery <= 0 {
		return
	}
	if s.cfg.WAL.LoggedBatches() < int64(s.cfg.SnapshotEvery) {
		return
	}
	s.Checkpoint()
}

// Checkpoint writes a new WAL snapshot generation — every bound graph in
// gio format plus the open-watch manifest — rotates the log and retires
// the previous generation. It is a no-op without a WAL. The walMu write
// side excludes in-flight log appends, so the snapshot is exactly the
// state the log's empty successor starts from.
func (s *Server) Checkpoint() error {
	if s.cfg.WAL == nil {
		return nil
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	var st wal.SnapshotState
	s.mu.RLock()
	st.NextID = s.nextID
	for _, b := range s.bindings {
		gs := wal.GraphSnapshot{Name: b.name, WriteGraph: b.eng.WriteGraph}
		for _, sess := range b.byWatcher {
			gs.Sessions = append(gs.Sessions, wal.Session{ID: sess.id, Semantics: sess.semantics, Pattern: sess.pattern})
		}
		st.Graphs = append(st.Graphs, gs)
	}
	s.mu.RUnlock()
	if err := s.cfg.WAL.Snapshot(st); err != nil {
		return err
	}
	s.stats.snapshots.Add(1)
	return nil
}

func wirePairs(ps []gpm.MatchPair) []client.MatchPair {
	if len(ps) == 0 {
		return nil
	}
	out := make([]client.MatchPair, len(ps))
	for i, p := range ps {
		out[i] = client.MatchPair{U: p.U, X: p.X}
	}
	return out
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]client.GraphInfo, 0, len(s.bindings))
	for _, b := range s.bindings {
		n, m := b.eng.Size()
		infos = append(infos, client.GraphInfo{
			Name:    b.name,
			Nodes:   n,
			Edges:   m,
			Oracle:  b.eng.OracleKind().String(),
			Workers: b.eng.Workers(),
			Watches: len(b.byWatcher),
		})
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// StatsSnapshot returns the aggregate counters (also served at /stats);
// cmd/gpmd publishes it through expvar. With a WAL configured the
// durability block reports the log position and what startup recovery
// replayed.
func (s *Server) StatsSnapshot() client.ServerStats {
	out := s.stats.snapshot()
	if w := s.cfg.WAL; w != nil {
		ws := &client.WALStats{
			Generation:        w.Generation(),
			SyncPolicy:        w.Sync().String(),
			LoggedBatches:     w.LoggedBatches(),
			Snapshots:         s.stats.snapshots.Load(),
			RecoveredGraphs:   s.recovery.graphs,
			RecoveredSessions: s.recovery.sessions,
			RecoveredBatches:  s.recovery.batches,
			ReplayMS:          float64(s.recovery.replayNS) / 1e6,
		}
		if s.cfg.Recovery != nil {
			ws.TruncatedTail = s.cfg.Recovery.Truncated
		}
		out.WAL = ws
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		out.Cache = &client.CacheStats{
			Hits:            cs.Hits,
			Misses:          cs.Misses,
			ContainmentHits: cs.ContainmentHits,
			Evictions:       cs.Evictions,
			Entries:         cs.Entries,
			Bytes:           cs.Bytes,
			MaxBytes:        cs.MaxBytes,
		}
	}
	return out
}
