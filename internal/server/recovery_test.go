package server_test

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"gpm"
	"gpm/client"
	"gpm/internal/difftest"
	"gpm/internal/server"
	"gpm/internal/wal"
)

// watchSemantics are the four incremental maintainers the crash harness
// must restore exactly.
var watchSemantics = []string{"match", "sim", "dual", "strong"}

// crashServer is one WAL-backed server run in the harness: boot, drive,
// then crash (discard everything in memory, keep only the directory).
type crashServer struct {
	srv *server.Server
	ts  *httptest.Server
	c   *client.Client
	w   *wal.WAL
	rec *wal.Recovery
	ids map[string]int64 // semantics -> watch id
}

// bootWAL opens (recovering) the WAL in dir and serves a freshly loaded
// testGraph over it — exactly what a gpmd restart pointed at the same
// flags and -wal DIR does.
func bootWAL(t *testing.T, dir string, snapshotEvery int) *crashServer {
	t.Helper()
	w, rec, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	srv := server.New(server.Config{WAL: w, Recovery: rec, SnapshotEvery: snapshotEvery})
	if err := srv.Bind("g", testGraph()); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	ts := httptest.NewServer(srv)
	return &crashServer{
		srv: srv, ts: ts,
		c: client.New(ts.URL, client.WithHTTPClient(ts.Client())),
		w: w, rec: rec,
		ids: map[string]int64{},
	}
}

// crash discards the server without any orderly checkpoint: the HTTP
// listener dies, the WAL file handle closes (a real crash loses it
// anyway), and all in-memory state is dropped.
func (cs *crashServer) crash() {
	cs.ts.Close()
	cs.w.Close()
}

// openWatches opens one session per semantics and records the ids.
func (cs *crashServer) openWatches(t *testing.T, p *gpm.Pattern) {
	t.Helper()
	ctx := t.Context()
	for _, sem := range watchSemantics {
		st, err := cs.c.Watch(ctx, "g", p, sem)
		if err != nil {
			t.Fatalf("watch %s: %v", sem, err)
		}
		cs.ids[sem] = st.ID
	}
}

// reference replays the same session against in-process watchers on an
// identical graph and returns each semantics' maintained relation — the
// never-crashed oracle the recovered server must match byte for byte
// (PR 4's harness proves these maintained relations equal recompute).
func reference(t *testing.T, p *gpm.Pattern, batches [][]gpm.Update) map[string][][]int32 {
	t.Helper()
	eng := gpm.NewEngine(testGraph())
	ws := map[string]*gpm.Watcher{}
	for _, sem := range watchSemantics {
		var w *gpm.Watcher
		var err error
		switch sem {
		case "match":
			w, err = eng.Watch(p)
		case "sim":
			w, err = eng.WatchSim(p)
		case "dual":
			w, err = eng.WatchDual(p)
		case "strong":
			w, err = eng.WatchStrong(p)
		}
		if err != nil {
			t.Fatalf("reference watch %s: %v", sem, err)
		}
		ws[sem] = w
	}
	for _, b := range batches {
		if _, err := eng.Update(b...); err != nil {
			t.Fatalf("reference update: %v", err)
		}
	}
	out := map[string][][]int32{}
	for sem, w := range ws {
		out[sem] = w.Relation()
	}
	return out
}

// assertRecovered compares every recovered session — found under its
// original id — against the reference relations.
func assertRecovered(t *testing.T, cs *crashServer, want map[string][][]int32) {
	t.Helper()
	ctx := t.Context()
	for _, sem := range watchSemantics {
		st, err := cs.c.WatchSnapshot(ctx, cs.ids[sem])
		if err != nil {
			t.Fatalf("recovered snapshot %s (id %d): %v", sem, cs.ids[sem], err)
		}
		if st.Semantics != sem {
			t.Fatalf("id %d recovered as %q, want %q", cs.ids[sem], st.Semantics, sem)
		}
		if !difftest.RelationsEqual(st.Matches, want[sem]) {
			t.Errorf("%s relation diverged after recovery:\n%s", sem, difftest.DiffRelations(st.Matches, want[sem]))
		}
	}
}

// TestCrashRecoveryMetamorphic is the acceptance harness: a WAL-backed
// server with all four watch semantics open is killed mid-update-stream
// and rebooted from the directory; every watcher must come back under
// its original id holding a relation byte-identical to a process that
// never crashed — with and without mid-stream snapshots, and again
// after post-recovery updates (the recovered watchers must be live
// maintainers, not frozen copies).
func TestCrashRecoveryMetamorphic(t *testing.T) {
	for _, tc := range []struct {
		name          string
		snapshotEvery int
	}{
		{"replay-only", 0},
		{"mid-stream snapshots", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			g := testGraph()
			p := testPattern(g, 4)
			ctx := t.Context()

			cs := bootWAL(t, dir, tc.snapshotEvery)
			cs.openWatches(t, p)
			var batches [][]gpm.Update
			live := testGraph() // tracks the served graph for valid update generation
			for round := int64(0); round < 7; round++ {
				ups := gpm.GenerateUpdates(gpm.UpdateGenConfig{Insertions: 4, Deletions: 4, Seed: 200 + round}, live)
				if _, _, err := cs.c.Update(ctx, "g", ups); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if _, err := gpm.NewEngine(live).Update(ups...); err != nil {
					t.Fatalf("round %d mirror: %v", round, err)
				}
				batches = append(batches, ups)
			}
			ids := cs.ids
			cs.crash()

			rec := bootWAL(t, dir, tc.snapshotEvery)
			defer rec.crash()
			rec.ids = ids
			if tc.snapshotEvery > 0 && rec.rec.Generation == 0 {
				t.Fatal("no snapshot was taken despite the cadence")
			}
			want := reference(t, p, batches)
			assertRecovered(t, rec, want)

			// The recovered sessions keep maintaining: one more batch through
			// both sides must agree again.
			more := gpm.GenerateUpdates(gpm.UpdateGenConfig{Insertions: 3, Deletions: 3, Seed: 999}, live)
			if _, _, err := rec.c.Update(ctx, "g", more); err != nil {
				t.Fatalf("post-recovery update: %v", err)
			}
			want = reference(t, p, append(batches, more))
			assertRecovered(t, rec, want)

			// Stats surface what recovery did.
			st, err := rec.c.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.WAL == nil {
				t.Fatal("stats lack the WAL block")
			}
			if st.WAL.RecoveredSessions != int64(len(watchSemantics)) {
				t.Errorf("recovered_sessions = %d, want %d", st.WAL.RecoveredSessions, len(watchSemantics))
			}
		})
	}
}

// TestCrashRecoveryTornTail covers the torn-final-record corpus at the
// harness level: a crash that corrupts the log tail mid-write must
// recover to the last complete batch — the reference over the surviving
// prefix — never error out, and keep serving.
func TestCrashRecoveryTornTail(t *testing.T) {
	for _, tc := range []struct {
		name        string
		damage      func(t *testing.T, logPath string)
		lostBatches int
	}{
		{
			// Garbage after the last complete record: nothing acknowledged
			// is lost.
			name: "garbage tail",
			damage: func(t *testing.T, logPath string) {
				f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				f.Write([]byte{0xde, 0xad, 0xbe})
				f.Close()
			},
			lostBatches: 0,
		},
		{
			// The final record itself is torn: its batch is lost, the
			// prefix survives.
			name: "truncated final record",
			damage: func(t *testing.T, logPath string) {
				fi, err := os.Stat(logPath)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(logPath, fi.Size()-5); err != nil {
					t.Fatal(err)
				}
			},
			lostBatches: 1,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			g := testGraph()
			p := testPattern(g, 4)
			ctx := t.Context()

			cs := bootWAL(t, dir, 0)
			cs.openWatches(t, p)
			var batches [][]gpm.Update
			live := testGraph()
			for round := int64(0); round < 5; round++ {
				ups := gpm.GenerateUpdates(gpm.UpdateGenConfig{Insertions: 4, Deletions: 4, Seed: 300 + round}, live)
				if _, _, err := cs.c.Update(ctx, "g", ups); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if _, err := gpm.NewEngine(live).Update(ups...); err != nil {
					t.Fatalf("round %d mirror: %v", round, err)
				}
				batches = append(batches, ups)
			}
			ids := cs.ids
			gen := cs.w.Generation()
			cs.crash()
			tc.damage(t, filepath.Join(dir, fmt.Sprintf("wal-%d.log", gen)))

			rec := bootWAL(t, dir, 0)
			defer rec.crash()
			rec.ids = ids
			if !rec.rec.Truncated {
				t.Fatal("recovery did not report the torn tail")
			}
			want := reference(t, p, batches[:len(batches)-tc.lostBatches])
			assertRecovered(t, rec, want)
		})
	}
}

// TestCleanRestartReplaysNothing pins the startup-checkpoint contract:
// after an orderly Checkpoint and close, the next boot recovers from the
// snapshot alone (no logged batches) with watch state intact.
func TestCleanRestartReplaysNothing(t *testing.T) {
	dir := t.TempDir()
	g := testGraph()
	p := testPattern(g, 4)
	ctx := t.Context()

	cs := bootWAL(t, dir, 0)
	cs.openWatches(t, p)
	live := testGraph()
	var batches [][]gpm.Update
	for round := int64(0); round < 3; round++ {
		ups := gpm.GenerateUpdates(gpm.UpdateGenConfig{Insertions: 4, Deletions: 4, Seed: 400 + round}, live)
		if _, _, err := cs.c.Update(ctx, "g", ups); err != nil {
			t.Fatal(err)
		}
		if _, err := gpm.NewEngine(live).Update(ups...); err != nil {
			t.Fatal(err)
		}
		batches = append(batches, ups)
	}
	if err := cs.srv.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	ids := cs.ids
	cs.crash() // after the checkpoint: a clean shutdown

	rec := bootWAL(t, dir, 0)
	defer rec.crash()
	rec.ids = ids
	if rec.rec.Batches != 0 {
		t.Errorf("clean restart replayed %d batches, want 0", rec.rec.Batches)
	}
	if rec.rec.Generation == 0 {
		t.Error("clean restart found no snapshot generation")
	}
	assertRecovered(t, rec, reference(t, p, batches))
}
