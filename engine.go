package gpm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gpm/internal/core"
	"gpm/internal/graph"
	"gpm/internal/incremental"
	"gpm/internal/plan"
	"gpm/internal/pll"
	"gpm/internal/simulation"
	"gpm/internal/subiso"
	"gpm/internal/topo"
	"gpm/internal/twohop"
)

// OracleKind identifies a distance-oracle strategy — the three variants
// the paper compares in Exp-2, plus the auto heuristic and the "no
// oracle" marker for queries that never probe distances.
type OracleKind int

const (
	// OracleAuto picks a concrete kind from |V| and |E| when the engine
	// binds its graph (see resolveOracleKind).
	OracleAuto OracleKind = iota
	// OracleMatrix precomputes the all-pairs distance matrix: O(1)
	// queries, O(|V|²) memory — the paper's main Match configuration.
	OracleMatrix
	// OracleBFS answers by cached breadth-first search: no
	// preprocessing, O(|V|) memory, slower queries.
	OracleBFS
	// OracleTwoHop filters BFS through a 2-hop reachability labelling.
	OracleTwoHop
	// OraclePLL answers from a pruned-landmark distance labelling
	// (Akiba–Iwata–Yoshida): exact distances in label-merge time with
	// memory that scales with the graph's hub structure instead of
	// |V|² — the auto choice for graphs past the matrix threshold.
	OraclePLL
	// OracleNone marks queries that use no distance oracle (plain
	// simulation, subgraph-isomorphism enumeration).
	OracleNone
)

// String names the kind the way cmd/gpmatch's -algo flag spells it.
func (k OracleKind) String() string {
	switch k {
	case OracleAuto:
		return "auto"
	case OracleMatrix:
		return "matrix"
	case OracleBFS:
		return "bfs"
	case OracleTwoHop:
		return "2hop"
	case OraclePLL:
		return "pll"
	case OracleNone:
		return "none"
	}
	return fmt.Sprintf("OracleKind(%d)", int(k))
}

// Threshold for OracleAuto. A distance matrix costs 4·|V|² bytes, so it
// is reserved for graphs where that is at most ~64 MB; past that, the
// pruned-landmark labelling takes over — exact distances like the
// matrix, memory that follows the graph's hub structure. Only graphs
// too large for the labelling's 24-bit hub ids fall back to plain BFS.
const autoMatrixMaxNodes = 4096

func resolveOracleKind(k OracleKind, g *Graph) OracleKind {
	if k != OracleAuto {
		return k
	}
	switch {
	case g.N() <= autoMatrixMaxNodes:
		return OracleMatrix
	case g.N() <= pll.MaxNodes:
		return OraclePLL
	default:
		return OracleBFS
	}
}

// ErrGraphTooLarge reports that the bound graph's node count exceeds
// the configured oracle strategy's addressing limit (PLL labels hold
// hub ids in 24 bits). Queries against such an engine fail with an
// error wrapping this sentinel instead of panicking, so a daemon
// serving many graphs survives one oversized binding.
var ErrGraphTooLarge = errors.New("graph too large for the configured distance oracle")

// EngineOption configures NewEngine.
type EngineOption func(*engineConfig)

type engineConfig struct {
	kind    OracleKind
	workers int
}

// WithOracle fixes the engine's distance-oracle strategy. The default is
// OracleMatrix, the paper's main configuration. Valid kinds are
// OracleAuto, OracleMatrix, OracleBFS, OracleTwoHop and OraclePLL;
// NewEngine panics on anything else (OracleNone marks oracle-less
// queries in MatchStats, it is not a strategy). Forcing OraclePLL on a
// graph with more nodes than PLL labels can address does not panic:
// the engine binds, and oracle-backed queries fail with an error
// wrapping [ErrGraphTooLarge] (OracleAuto instead falls back to BFS).
func WithOracle(k OracleKind) EngineOption {
	return func(c *engineConfig) { c.kind = k }
}

// WithAutoOracle lets the engine pick the oracle from the bound graph's
// size and density — equivalent to WithOracle(OracleAuto).
func WithAutoOracle() EngineOption {
	return func(c *engineConfig) { c.kind = OracleAuto }
}

// WithWorkers sets the engine's matching parallelism: the number of
// goroutines one Match query shards its fixpoint initialisation across,
// and the fan-out of MatchBatch. n <= 0 (and the default) means
// GOMAXPROCS. WithWorkers(1) pins fully sequential matching — the
// reference behavior the differential tests compare against; any worker
// count produces bit-identical results (the greatest fixpoint is unique).
func WithWorkers(n int) EngineOption {
	return func(c *engineConfig) { c.workers = n }
}

// MatchStats instruments one engine query: which oracle served it, how
// much shared-index construction the call paid for (zero on a cache
// hit), the matching time proper, and the work counters of the fixpoint.
type MatchStats struct {
	Oracle        OracleKind    // oracle kind that served the query
	OracleBuild   time.Duration // shared-index build time charged to this call
	MatchTime     time.Duration // fixpoint / enumeration time, excluding OracleBuild
	OracleQueries int64         // distance-oracle probes issued
	Removals      int64         // pairs removed during refinement
	InitialPairs  int64         // candidate pairs before refinement
}

// MatchResult is a bounded-simulation match with its query stats.
type MatchResult struct {
	*Result
	Stats MatchStats
}

// SimulationResult is a plain-simulation outcome with its query stats.
type SimulationResult struct {
	Relation [][]int32 // per pattern node, sorted matching data nodes
	OK       bool      // every pattern node matched
	Stats    MatchStats
}

// EnumerationResult is a subgraph-isomorphism enumeration with its query
// stats.
type EnumerationResult struct {
	*Enumeration
	Stats MatchStats
}

// CountResult is an embedding count (see [Engine.CountEmbeddings]) with
// its query stats.
type CountResult struct {
	Count    int64 // number of embeddings
	Steps    int64 // search-tree nodes explored
	Complete bool  // false when a budget or cancellation cut the count short
	// Automorphisms is the pattern's automorphism-group size the planner
	// exploited (each explored canonical embedding stands for this many;
	// 1 when unplanned).
	Automorphisms int
	Stats         MatchStats
}

// TopoResult is a dual- or strong-simulation outcome with its query
// stats (see [Engine.DualSimulate] and [Engine.StrongSimulate]). It
// embeds [Result], so it carries the full relation accessor set and can
// be materialised as a result graph through [Engine.ResultGraphOf].
type TopoResult struct {
	*Result
	Stats MatchStats
}

// WatchDelta pairs a watcher with the effect one Update batch had on its
// maintained match.
type WatchDelta struct {
	Watcher *Watcher
	Delta   UpdateDelta
}

// Engine binds a data graph once and serves every matching semantics the
// package implements against it: bounded simulation ([Engine.Match]),
// plain simulation ([Engine.Simulate]), dual and strong simulation
// ([Engine.DualSimulate], [Engine.StrongSimulate]), subgraph-isomorphism
// enumeration ([Engine.Enumerate]), and incremental matching under edge
// updates ([Engine.Watch], [Engine.WatchSim], [Engine.WatchDual],
// [Engine.WatchStrong] / [Engine.Update]). The distance oracle is built
// lazily on the first query that needs it and cached, so concurrent and
// repeated queries share one preprocessing pass instead of re-paying it
// per call.
//
// An Engine is safe for concurrent use: queries may run in parallel with
// each other, and Update excludes them while it mutates the graph. The
// bound graph must not be mutated except through [Engine.Update].
type Engine struct {
	g       *Graph
	kind    OracleKind // resolved; never OracleAuto
	workers int        // resolved; >= 1
	confErr error      // deferred bind-time config error; fails oracle queries

	// mu orders queries (read side) against Update/Watch (write side).
	// buildMu serialises lazy index construction, which runs under the
	// read side so concurrent queries don't build twice.
	mu      sync.RWMutex
	buildMu sync.Mutex

	mo       atomic.Pointer[core.MatrixOracle]     // kind == OracleMatrix
	idx      atomic.Pointer[twohop.Index]          // kind == OracleTwoHop
	po       atomic.Pointer[core.PLLOracle]        // kind == OraclePLL; root oracle, cloned per query
	dm       atomic.Pointer[incremental.DynMatrix] // shared matrix maintenance
	fz       atomic.Pointer[graph.Frozen]          // CSR snapshot; dropped on Update
	watchers []*Watcher                            // guarded by mu (write side)

	// gen is the monotone structural version of the bound graph: bumped
	// by Update exactly when a batch has a net effect, mirroring the
	// engine's own cache invalidation (a no-op batch changes nothing, so
	// relations keyed by the old generation stay valid). See Generation.
	gen atomic.Uint64
}

// NewEngine binds g. The graph must outlive the engine and, from then
// on, be mutated only through [Engine.Update].
func NewEngine(g *Graph, opts ...EngineOption) *Engine {
	cfg := engineConfig{kind: OracleMatrix}
	for _, opt := range opts {
		opt(&cfg)
	}
	var confErr error
	switch cfg.kind {
	case OracleAuto, OracleMatrix, OracleBFS, OracleTwoHop:
	case OraclePLL:
		if g.N() > pll.MaxNodes {
			// Deferred, not panicked: a daemon binding graphs on behalf
			// of clients must survive an oversized one. The first query
			// that needs the oracle surfaces this error.
			confErr = fmt.Errorf("gpm: WithOracle(OraclePLL) on a %d-node graph; PLL labels address at most %d nodes: %w",
				g.N(), pll.MaxNodes, ErrGraphTooLarge)
		}
	default:
		panic(fmt.Sprintf("gpm: WithOracle(%v) is not a valid engine oracle strategy", cfg.kind))
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{g: g, kind: resolveOracleKind(cfg.kind, g), workers: workers, confErr: confErr}
}

// Graph returns the bound data graph. Treat it as read-only; mutate only
// through [Engine.Update].
func (e *Engine) Graph() *Graph { return e.g }

// Size reports the bound graph's current node and edge counts, ordered
// against concurrent [Engine.Update] calls (reading Graph().M() directly
// would race with an in-flight update batch).
func (e *Engine) Size() (nodes, edges int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.g.N(), e.g.M()
}

// OracleKind reports the resolved oracle strategy (never OracleAuto:
// WithAutoOracle resolves against the graph at bind time).
func (e *Engine) OracleKind() OracleKind { return e.kind }

// Workers reports the resolved matching parallelism (see WithWorkers).
func (e *Engine) Workers() int { return e.workers }

// Generation returns the monotone structural version of the bound graph.
// It advances exactly when an [Engine.Update] batch has a net structural
// effect — empty and insert-then-delete batches leave it unchanged, just
// as they leave the engine's internal caches intact — so an external
// result cache may key entries by (graph, generation) and treat them as
// valid for as long as the generation stands. [Engine.RelationQuery]
// reports the generation it ran under, read inside the query's lock.
func (e *Engine) Generation() uint64 { return e.gen.Load() }

// frozen returns the engine's cached immutable CSR snapshot of the bound
// graph, freezing it on first use. Must be called with mu read-held and
// buildMu NOT held; the snapshot is dropped by Update and lazily rebuilt.
func (e *Engine) frozen() *graph.Frozen {
	if f := e.fz.Load(); f != nil {
		return f
	}
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	return e.frozenLocked()
}

// frozenLocked is frozen for callers already holding buildMu.
func (e *Engine) frozenLocked() *graph.Frozen {
	f := e.fz.Load()
	if f == nil {
		f = e.g.Freeze()
		e.fz.Store(f)
	}
	return f
}

// ensureDM returns the shared maintained graph+matrix pair, building it
// on first use. Callers must hold either buildMu (with mu read-held) or
// the mu write lock; the two cannot overlap.
func (e *Engine) ensureDM() *incremental.DynMatrix {
	if dm := e.dm.Load(); dm != nil {
		return dm
	}
	dm := incremental.NewDynMatrix(e.g)
	e.dm.Store(dm)
	return dm
}

// testHookPLLBuild, when non-nil, runs at the start of every PLL index
// construction the engine performs. Tests use it to count builds and
// prove the lazy path is single-flight under concurrent first queries.
var testHookPLLBuild func()

// queryOracle returns a DistOracle ready for one query, building the
// shared index if this is the first query to need it. Must be called
// with mu read-held. The returned duration is the index build time this
// call paid (zero on a cache hit). Cancelling ctx aborts an in-flight
// index build with ctx.Err(); a deferred bind-time configuration error
// (see WithOracle) also surfaces here.
func (e *Engine) queryOracle(ctx context.Context) (DistOracle, time.Duration, error) {
	if e.confErr != nil {
		return nil, 0, e.confErr
	}
	switch e.kind {
	case OracleBFS:
		// No shared index: a BFS oracle is its own per-query cache. It
		// does share the engine's frozen snapshot, so repeated queries
		// skip the O(|V|+|E|) freeze.
		return core.NewBFSOracleFrozen(e.frozen()), 0, nil
	case OracleTwoHop:
		if idx := e.idx.Load(); idx != nil {
			return core.NewTwoHopOracleFrozen(e.frozen(), idx), 0, nil
		}
		e.buildMu.Lock()
		defer e.buildMu.Unlock()
		idx := e.idx.Load()
		var built time.Duration
		if idx == nil {
			start := time.Now()
			idx = twohop.Build(e.g)
			built = time.Since(start)
			e.idx.Store(idx)
		}
		return core.NewTwoHopOracleFrozen(e.frozenLocked(), idx), built, nil
	case OraclePLL:
		// The root oracle (shared labelling + color sub-labelings) is
		// cached; every query takes a clone with fresh probe caches,
		// since those are single-goroutine state.
		if po := e.po.Load(); po != nil {
			return po.CloneForWorker(), 0, nil
		}
		e.buildMu.Lock()
		defer e.buildMu.Unlock()
		po := e.po.Load()
		var built time.Duration
		if po == nil {
			if testHookPLLBuild != nil {
				testHookPLLBuild()
			}
			start := time.Now()
			f := e.frozenLocked()
			opts := pll.AutoOptions(f)
			opts.Workers = e.workers
			idx, err := pll.Build(ctx, f, opts)
			if err != nil {
				// Cancellation: the next query retries the build.
				return nil, 0, err
			}
			po = core.NewPLLOracleFrozen(f, idx)
			built = time.Since(start)
			e.po.Store(po)
		}
		return po.CloneForWorker(), built, nil
	default: // OracleMatrix
		if mo := e.mo.Load(); mo != nil {
			return mo, 0, nil
		}
		e.buildMu.Lock()
		defer e.buildMu.Unlock()
		mo := e.mo.Load()
		var built time.Duration
		if mo == nil {
			start := time.Now()
			// Build the matrix through the shared DynMatrix so Update
			// keeps it consistent in place.
			mo = core.NewMatrixOracle(e.g, e.ensureDM().Matrix())
			built = time.Since(start)
			e.mo.Store(mo)
		}
		return mo, built, nil
	}
}

// RelSemantics identifies one of the four relation-valued matching
// semantics the engine serves through one internal query path.
type RelSemantics int

const (
	// RelMatch is bounded simulation — the paper's cubic-time Match.
	RelMatch RelSemantics = iota
	// RelSim is plain graph simulation (all bounds 1).
	RelSim
	// RelDual is dual simulation (child + parent constraints).
	RelDual
	// RelStrong is strong simulation (dual inside diameter balls).
	RelStrong
)

// String names the semantics the way the server routes spell it.
func (s RelSemantics) String() string {
	switch s {
	case RelMatch:
		return "match"
	case RelSim:
		return "sim"
	case RelDual:
		return "dual"
	case RelStrong:
		return "strong"
	}
	return fmt.Sprintf("RelSemantics(%d)", int(s))
}

// ParseRelSemantics recognises the four relation-semantics names.
func ParseRelSemantics(s string) (RelSemantics, error) {
	switch s {
	case "match":
		return RelMatch, nil
	case "sim":
		return RelSim, nil
	case "dual":
		return RelDual, nil
	case "strong":
		return RelStrong, nil
	}
	return 0, fmt.Errorf("gpm: unknown relation semantics %q (want match, sim, dual or strong)", s)
}

// RelationQuery describes one relation-valued query — the shared
// descriptor behind [Engine.Match], [Engine.Simulate],
// [Engine.DualSimulate] and [Engine.StrongSimulate].
type RelationQuery struct {
	Semantics RelSemantics
	Pattern   *Pattern

	// Seed, when non-nil, restricts each pattern node's initial candidate
	// set to the given data nodes instead of scanning the whole graph
	// (one slice per pattern node). The caller guarantees the seed is a
	// superset of the true relation — typically the filtered relation of
	// a containing pattern (see pattern containment in internal/pattern):
	// the greatest fixpoint inside any such superset is exactly the
	// maximum relation, so seeded answers are bit-identical to unseeded
	// ones. Strong simulation does not support seeding (its ball
	// extraction is not a plain fixpoint).
	Seed [][]int32
}

// RelationResult is the uniform outcome of [Engine.RelationQuery]: the
// relation rows (fresh copies, ascending data-node ids per pattern
// node), whether every pattern node matched, the graph generation the
// query observed (see [Engine.Generation]) and the query stats.
type RelationResult struct {
	Relation   [][]int32
	OK         bool
	Generation uint64
	Stats      MatchStats
}

// RelationQuery runs one relation-valued query through the engine's
// unified dispatch. The Generation in the result is read under the same
// lock as the query itself, so a cache may key the answer by it without
// racing concurrent updates.
func (e *Engine) RelationQuery(ctx context.Context, q RelationQuery) (*RelationResult, error) {
	if q.Seed != nil {
		q.Seed = normalizeSeed(q.Seed, e.g.N())
	}
	res, stats, gen, err := e.relationQuery(ctx, q)
	if err != nil {
		return nil, err
	}
	return &RelationResult{Relation: res.Relation(), OK: res.OK(), Generation: gen, Stats: stats}, nil
}

// normalizeSeed returns a copy of seed with every row ascending, deduped
// and clipped to [0, n) — the form the fixpoint initialisers require.
func normalizeSeed(seed [][]int32, n int) [][]int32 {
	out := make([][]int32, len(seed))
	for u, row := range seed {
		r := append([]int32(nil), row...)
		sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
		dst := r[:0]
		for i, x := range r {
			if x < 0 || int(x) >= n || (i > 0 && x == r[i-1]) {
				continue
			}
			dst = append(dst, x)
		}
		out[u] = dst
	}
	return out
}

// relationQuery is the single dispatch behind the four relation-valued
// semantics. It holds the read lock across oracle acquisition, the
// fixpoint and the generation read, so the returned generation is
// exactly the graph version the relation describes.
func (e *Engine) relationQuery(ctx context.Context, q RelationQuery) (*core.Result, MatchStats, uint64, error) {
	if err := ctx.Err(); err != nil {
		return nil, MatchStats{}, 0, err
	}
	p := q.Pattern
	if q.Seed != nil {
		if q.Semantics == RelStrong {
			return nil, MatchStats{}, 0, fmt.Errorf("gpm: strong simulation does not support seeded queries")
		}
		if len(q.Seed) != p.N() {
			return nil, MatchStats{}, 0, fmt.Errorf("gpm: seed has %d rows for a %d-node pattern", len(q.Seed), p.N())
		}
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	gen := e.gen.Load()
	switch q.Semantics {
	case RelMatch:
		o, built, err := e.queryOracle(ctx)
		if err != nil {
			return nil, MatchStats{}, 0, err
		}
		var cs core.Stats
		start := time.Now()
		res, err := core.MatchOpts(ctx, p, e.g, o, &cs, core.MatchOptions{
			Workers: e.workers,
			Frozen:  e.frozen(),
			Seed:    q.Seed,
		})
		if err != nil {
			return nil, MatchStats{}, 0, err
		}
		return res, MatchStats{
			Oracle:        e.kind,
			OracleBuild:   built,
			MatchTime:     time.Since(start),
			OracleQueries: cs.OracleQueries,
			Removals:      cs.Removals,
			InitialPairs:  cs.InitialPairs,
		}, gen, nil
	case RelSim:
		start := time.Now()
		rel, ok, err := simulation.RunFrozenSeeded(ctx, p, e.frozen(), q.Seed)
		if err != nil {
			return nil, MatchStats{}, 0, err
		}
		return core.NewResult(p, e.g, rel, ok), MatchStats{
			Oracle:    OracleNone,
			MatchTime: time.Since(start),
		}, gen, nil
	case RelDual:
		start := time.Now()
		rel, ok, err := topo.DualSim(ctx, p, e.frozen(), topo.Options{Workers: e.workers, Seed: q.Seed})
		if err != nil {
			return nil, MatchStats{}, 0, err
		}
		return core.NewResult(p, e.g, rel, ok), MatchStats{
			Oracle:    OracleNone,
			MatchTime: time.Since(start),
		}, gen, nil
	case RelStrong:
		start := time.Now()
		rel, ok, err := topo.StrongSim(ctx, p, e.frozen(), topo.Options{Workers: e.workers})
		if err != nil {
			return nil, MatchStats{}, 0, err
		}
		return core.NewResult(p, e.g, rel, ok), MatchStats{
			Oracle:    OracleNone,
			MatchTime: time.Since(start),
		}, gen, nil
	}
	return nil, MatchStats{}, 0, fmt.Errorf("gpm: unknown relation semantics %v", q.Semantics)
}

// Match computes the maximum bounded-simulation match of p against the
// bound graph — the paper's cubic-time Match, served from the engine's
// cached oracle. Cancelling ctx aborts the fixpoint with ctx.Err().
func (e *Engine) Match(ctx context.Context, p *Pattern) (*MatchResult, error) {
	res, stats, _, err := e.relationQuery(ctx, RelationQuery{Semantics: RelMatch, Pattern: p})
	if err != nil {
		return nil, err
	}
	return &MatchResult{Result: res, Stats: stats}, nil
}

// MatchBatch computes the maximum bounded-simulation match of every
// pattern in ps against the bound graph, fanning the batch across the
// engine's workers (see WithWorkers) over the shared cached oracle.
// Results align positionally with ps. The shared index build time, if
// this batch paid it, is charged to the first result's stats.
//
// Inside a batch each query runs its fixpoint sequentially when the
// batch itself saturates the workers; a batch smaller than the worker
// count hands the spare workers to per-query sharding. Cancelling ctx
// aborts outstanding queries and returns ctx.Err(); the whole batch
// fails on the first query error.
func (e *Engine) MatchBatch(ctx context.Context, ps []*Pattern) ([]*MatchResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(ps) == 0 {
		return nil, nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	o, built, err := e.queryOracle(ctx)
	if err != nil {
		return nil, err
	}
	f := e.frozen()
	fanout := e.workers
	if fanout > len(ps) {
		fanout = len(ps)
	}
	// Split the worker budget across the fan-out lanes; the first
	// e.workers%fanout lanes take the remainder so no worker idles.
	perQuery := e.workers / fanout
	extra := e.workers % fanout
	if perQuery < 1 {
		perQuery = 1
		extra = 0
	}
	ctx, cancelBatch := context.WithCancel(ctx)
	defer cancelBatch()

	results := make([]*MatchResult, len(ps))
	// The first real failure is latched before the batch is cancelled, so
	// sibling queries aborting with context.Canceled cannot mask it.
	var errOnce sync.Once
	var batchErr error
	var wg sync.WaitGroup
	idxCh := make(chan int)
	for w := 0; w < fanout; w++ {
		laneWorkers := perQuery
		if w < extra {
			laneWorkers++
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each fan-out worker probes a private clone of the shared
			// oracle (the matrix oracle is itself concurrency-safe and
			// clones to itself; BFS-backed oracles clone their frontier
			// caches but share the frozen snapshot and 2-hop labelling).
			wo := o
			if c, ok := o.(core.WorkerCloner); ok {
				wo = c.CloneForWorker()
			}
			for i := range idxCh {
				var cs core.Stats
				start := time.Now()
				res, err := core.MatchOpts(ctx, ps[i], e.g, wo, &cs, core.MatchOptions{
					Workers: laneWorkers,
					Frozen:  f,
				})
				if err != nil {
					errOnce.Do(func() {
						batchErr = err
						cancelBatch()
					})
					continue
				}
				results[i] = &MatchResult{Result: res, Stats: MatchStats{
					Oracle:        e.kind,
					MatchTime:     time.Since(start),
					OracleQueries: cs.OracleQueries,
					Removals:      cs.Removals,
					InitialPairs:  cs.InitialPairs,
				}}
			}
		}()
	}
	for i := range ps {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	if batchErr != nil {
		return nil, batchErr
	}
	results[0].Stats.OracleBuild = built
	return results, nil
}

// Simulate computes plain graph simulation of p (every pattern edge
// bound must be 1) against the bound graph.
func (e *Engine) Simulate(ctx context.Context, p *Pattern) (*SimulationResult, error) {
	res, stats, _, err := e.relationQuery(ctx, RelationQuery{Semantics: RelSim, Pattern: p})
	if err != nil {
		return nil, err
	}
	return &SimulationResult{Relation: res.Relation(), OK: res.OK(), Stats: stats}, nil
}

// DualSimulate computes the maximum dual simulation of p (every pattern
// edge bound must be 1) against the bound graph: plain simulation
// extended with parent constraints, so both child and parent topology
// of the pattern are preserved (Ma et al., "Capturing Topology in Graph
// Pattern Matching", VLDB 2012). The fixpoint's initialisation shards
// across the engine's workers (see WithWorkers); every worker count
// returns bit-identical relations.
func (e *Engine) DualSimulate(ctx context.Context, p *Pattern) (*TopoResult, error) {
	res, stats, _, err := e.relationQuery(ctx, RelationQuery{Semantics: RelDual, Pattern: p})
	if err != nil {
		return nil, err
	}
	return &TopoResult{Result: res, Stats: stats}, nil
}

// StrongSimulate computes strong simulation of p (every pattern edge
// bound must be 1) against the bound graph: dual simulation evaluated
// inside diameter-bounded balls around candidate centers, keeping only
// maximum perfect subgraphs (Ma et al., VLDB 2012) — the strictest
// polynomial-time semantics the engine serves, preserving topology that
// plain and dual simulation lose. Ball evaluation fans out across the
// engine's workers (see WithWorkers); every worker count returns
// bit-identical relations.
func (e *Engine) StrongSimulate(ctx context.Context, p *Pattern) (*TopoResult, error) {
	res, stats, _, err := e.relationQuery(ctx, RelationQuery{Semantics: RelStrong, Pattern: p})
	if err != nil {
		return nil, err
	}
	return &TopoResult{Result: res, Stats: stats}, nil
}

// usePlanner reports whether Enumerate/CountEmbeddings should consult the
// query planner: it is the default, unless the caller opted out or
// brought their own plan.
func usePlanner(opts IsoOptions) bool {
	return !opts.NoPlan && opts.Order == nil && len(opts.Restrictions) == 0 && opts.ExpandPerEmbedding <= 1
}

// Enumerate lists subgraph-isomorphism embeddings of p (edge-to-edge
// semantics) against the bound graph; opts bounds the search and selects
// VF2 (default) or Ullmann. By default the search runs under a query plan
// (internal/plan): a cost-modelled matching order plus symmetry-breaking
// restrictions whose canonical embeddings are re-expanded through the
// pattern's automorphism group, so the reported embedding set is exactly
// the unplanned one. IsoOptions.NoPlan opts out. On cancellation it
// returns ctx.Err() alongside the partial enumeration found so far
// (Complete == false), so deadline-bounded callers keep their best-effort
// embeddings.
func (e *Engine) Enumerate(ctx context.Context, p *Pattern, opts IsoOptions) (*EnumerationResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Snapshot the CSR under the read lock, then search lock-free: a
	// single exponential enumeration must not starve Update and the
	// watchers behind the write lock.
	e.mu.RLock()
	f := e.frozen()
	e.mu.RUnlock()
	start := time.Now()
	opts.CountOnly = false
	var aut [][]int32
	if usePlanner(opts) {
		pl, err := plan.Build(p, f)
		if err != nil {
			return nil, err
		}
		opts.Order, opts.Restrictions = pl.Order, pl.Restrictions
		opts.ExpandPerEmbedding = len(pl.Aut)
		aut = pl.Aut
	}
	enum, err := subiso.EnumerateFrozen(ctx, p, f, opts)
	if enum == nil {
		return nil, err
	}
	if len(aut) > 1 {
		enum.Embeddings = plan.Expand(enum.Embeddings, aut)
		limit := opts.MaxEmbeddings
		if limit <= 0 {
			limit = 1<<31 - 1
		}
		if len(enum.Embeddings) > limit {
			enum.Embeddings = enum.Embeddings[:limit]
			enum.Complete = false
		}
	}
	enum.Count = int64(len(enum.Embeddings))
	return &EnumerationResult{Enumeration: enum, Stats: MatchStats{
		Oracle:    OracleNone,
		MatchTime: time.Since(start),
	}}, err
}

// CountEmbeddings counts the subgraph-isomorphism embeddings of p without
// materialising them. Under the default plan the search enumerates one
// canonical embedding per automorphism orbit and multiplies by |Aut|, and
// switches to inclusion-exclusion over the independent tail of the
// matching order — often orders of magnitude cheaper than
// len(Enumerate(...)). MaxEmbeddings is ignored; MaxSteps and ctx still
// bound the search (partial counts come back with Complete == false, and
// ctx.Err() alongside on cancellation).
func (e *Engine) CountEmbeddings(ctx context.Context, p *Pattern, opts IsoOptions) (*CountResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	f := e.frozen()
	e.mu.RUnlock()
	start := time.Now()
	opts.CountOnly = true
	opts.MaxEmbeddings = 0
	factor := 1
	if usePlanner(opts) {
		pl, err := plan.Build(p, f)
		if err != nil {
			return nil, err
		}
		opts.Order, opts.Restrictions = pl.Order, pl.Restrictions
		opts.ExpandPerEmbedding = len(pl.Aut)
		factor = len(pl.Aut)
	}
	enum, err := subiso.EnumerateFrozen(ctx, p, f, opts)
	if enum == nil {
		return nil, err
	}
	return &CountResult{
		Count:         enum.Count,
		Steps:         enum.Steps,
		Complete:      enum.Complete,
		Automorphisms: factor,
		Stats: MatchStats{
			Oracle:    OracleNone,
			MatchTime: time.Since(start),
		},
	}, err
}

// EnumerationPlan returns the plan Enumerate and CountEmbeddings would
// run p under: matching order, symmetry-breaking restrictions and the
// automorphism group (gpmatch -plan surfaces it).
func (e *Engine) EnumerationPlan(p *Pattern) (*EnumPlan, error) {
	e.mu.RLock()
	f := e.frozen()
	e.mu.RUnlock()
	return plan.Build(p, f)
}

// ResultGraph materialises the succinct result graph (§2.2) of a match
// this engine computed.
func (e *Engine) ResultGraph(res *MatchResult) *ResultGraph {
	return e.ResultGraphOf(res.Result)
}

// ResultGraphOf materialises the result graph of any relation-valued
// result this engine computed — bounded simulation ([Engine.Match]) as
// well as dual and strong simulation ([Engine.DualSimulate],
// [Engine.StrongSimulate], whose TopoResult embeds a Result).
func (e *Engine) ResultGraphOf(res *Result) *ResultGraph {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if res.Pattern().AllBoundsOne() {
		// All witnesses are single edges (the only case for dual/strong
		// results), so adjacency over the cached snapshot answers every
		// probe — no need to build (or pay the memory for) the full
		// distance oracle on an engine that never ran a bounded query.
		f := e.frozen()
		return core.BuildResultGraphFrozen(res, core.NewEdgeOracle(f), f)
	}
	// A bounded res implies a query already built (and cached) the
	// oracle, so this cannot block on construction or fail in practice;
	// the panic guards the API against results from a different engine.
	o, _, err := e.queryOracle(context.Background())
	if err != nil {
		panic(fmt.Sprintf("gpm: ResultGraphOf on an engine whose oracle cannot be built: %v", err))
	}
	return core.BuildResultGraphFrozen(res, o, e.frozen())
}

// Watch starts maintaining the maximum bounded-simulation match of p
// incrementally (the paper's IncMatch). All bounded watchers share the
// engine's DynamicMatrix; feed edge updates through [Engine.Update] and
// every watcher absorbs the same distance changes. Close a watcher to
// stop paying its maintenance.
func (e *Engine) Watch(p *Pattern) (*Watcher, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m, err := incremental.NewMatcher(p, e.ensureDM())
	if err != nil {
		return nil, err
	}
	return e.register(m, true), nil
}

// WatchSim starts maintaining the maximum plain-simulation relation of p
// (every edge bound must be 1, no edge colors) incrementally: the
// fixpoint's witness counters stay alive between updates and each Update
// batch propagates deltas through them instead of re-running the
// fixpoint. Unlike bounded watchers, sim/dual/strong watchers maintain
// no distance matrix, so they cost no O(|V|²) memory.
func (e *Engine) WatchSim(p *Pattern) (*Watcher, error) {
	return e.watchIncSim(p, true)
}

// WatchDual is WatchSim for the maximum dual-simulation relation (Ma et
// al., VLDB 2012): both child and parent witness counters are maintained
// between updates.
func (e *Engine) WatchDual(p *Pattern) (*Watcher, error) {
	return e.watchIncSim(p, false)
}

func (e *Engine) watchIncSim(p *Pattern, childOnly bool) (*Watcher, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m, err := incremental.NewSimMatcher(p, e.g, childOnly)
	if err != nil {
		return nil, err
	}
	return e.register(m, false), nil
}

// WatchStrong starts maintaining the strong-simulation relation of p
// (every edge bound must be 1, no edge colors) incrementally: per-ball
// contributions are stored, and an Update batch re-evaluates only the
// balls within the pattern's diameter of a touched node, fanning them
// across the engine's workers (see WithWorkers). The maintained relation
// is bit-identical to [Engine.StrongSimulate] at every worker count.
func (e *Engine) WatchStrong(p *Pattern) (*Watcher, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m, err := incremental.NewStrongMatcher(p, e.g, e.workers)
	if err != nil {
		return nil, err
	}
	return e.register(m, false), nil
}

// register enrolls a maintainer in the watcher registry. Callers hold
// the mu write lock.
func (e *Engine) register(m incremental.Maintainer, needsMatrix bool) *Watcher {
	w := &Watcher{e: e, m: m, needsMatrix: needsMatrix}
	e.watchers = append(e.watchers, w)
	return w
}

// Update applies a batch of edge updates to the bound graph, keeps the
// shared distance matrix consistent (the paper's UpdateBM), cascades
// every watcher — bounded (IncMatch) and sim/dual/strong alike — and
// invalidates derived caches. It returns one delta per open watcher, in
// Watch order. On a validation error the graph is unchanged.
//
// A batch with no net structural effect (empty, or every touched edge
// inserted-then-deleted within the batch) keeps the cached frozen
// snapshot, 2-hop labelling, PLL labelling and color submatrices: they
// still describe the graph, so later queries skip the rebuild.
func (e *Engine) Update(updates ...Update) ([]WatchDelta, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var deltas []WatchDelta
	if dm := e.dm.Load(); dm != nil {
		aff, err := dm.Apply(updates)
		if err != nil {
			return nil, err
		}
		for _, w := range e.watchers {
			deltas = append(deltas, WatchDelta{Watcher: w, Delta: w.m.ApplyPrecomputed(aff, updates)})
		}
	} else {
		// No distance matrix maintained: structural change plus the
		// adjacency-based watchers.
		if err := incremental.ApplyToGraph(e.g, updates); err != nil {
			return nil, err
		}
		for _, w := range e.watchers {
			deltas = append(deltas, WatchDelta{Watcher: w, Delta: w.m.ApplyPrecomputed(nil, updates)})
		}
	}
	if ins, dels := incremental.NetEffects(updates); len(ins) == 0 && len(dels) == 0 {
		return deltas, nil
	}
	e.gen.Add(1)
	// The main matrix was maintained in place; color submatrices, the
	// 2-hop labelling, the PLL labelling and the frozen CSR snapshot
	// were not, so drop them for lazy rebuild.
	if mo := e.mo.Load(); mo != nil {
		mo.InvalidateColors()
	}
	e.idx.Store(nil)
	e.po.Store(nil)
	e.fz.Store(nil)
	return deltas, nil
}

// Watcher is an incrementally maintained match bound to an engine — a
// bounded-simulation match ([Engine.Watch]) or a plain/dual/strong
// simulation relation ([Engine.WatchSim], [Engine.WatchDual],
// [Engine.WatchStrong]). Its read methods are safe to call concurrently
// with engine queries; they observe the state as of the last Update.
type Watcher struct {
	e           *Engine
	m           incremental.Maintainer
	needsMatrix bool // bounded watchers keep the shared DynMatrix alive
	closed      bool
}

// Pattern returns the watched pattern.
func (w *Watcher) Pattern() *Pattern { return w.m.Pattern() }

// OK reports whether the pattern currently matches the engine's graph.
func (w *Watcher) OK() bool {
	w.e.mu.RLock()
	defer w.e.mu.RUnlock()
	return w.m.OK()
}

// Pairs returns |S|, the current size of the maintained relation.
func (w *Watcher) Pairs() int {
	w.e.mu.RLock()
	defer w.e.mu.RUnlock()
	return w.m.Pairs()
}

// Mat returns the sorted data nodes currently matching pattern node u.
func (w *Watcher) Mat(u int) []int32 {
	w.e.mu.RLock()
	defer w.e.mu.RUnlock()
	return w.m.Mat(u)
}

// Relation snapshots the whole maintained relation.
func (w *Watcher) Relation() [][]int32 {
	w.e.mu.RLock()
	defer w.e.mu.RUnlock()
	return w.m.Relation()
}

// Close unregisters the watcher from its engine; subsequent Updates no
// longer maintain it. When the last matrix-backed watcher closes and
// nothing else uses the shared matrix (the engine's cached oracle is not
// backed by it), the DynamicMatrix is released too, so Updates stop
// paying distance-matrix maintenance and the O(|V|²) memory is freed —
// sim/dual/strong watchers never pin it. Closing twice is a no-op.
func (w *Watcher) Close() {
	w.e.mu.Lock()
	defer w.e.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	for i, o := range w.e.watchers {
		if o == w {
			w.e.watchers = append(w.e.watchers[:i], w.e.watchers[i+1:]...)
			break
		}
	}
	matrixNeeded := false
	for _, o := range w.e.watchers {
		if o.needsMatrix {
			matrixNeeded = true
			break
		}
	}
	if !matrixNeeded && w.e.mo.Load() == nil {
		w.e.dm.Store(nil)
	}
}
