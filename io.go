package gpm

import (
	"io"
	"os"

	"gpm/internal/datasets"
	"gpm/internal/generator"
	"gpm/internal/gio"
	"gpm/internal/graph"
)

// GraphStats summarises a graph's degree structure.
type GraphStats = graph.Stats

// Stats computes degree statistics of g.
func Stats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// WriteGraph / ReadGraph serialise data graphs in the line-oriented text
// format documented in README ("graph n / node id k=v ... / edge u v").
func WriteGraph(w io.Writer, g *Graph) error { return gio.WriteGraph(w, g) }

// WriteGraph serialises the engine's bound graph in the text format,
// ordered against concurrent [Engine.Update] batches (serialising
// e.Graph() directly would race with an in-flight batch). The WAL's
// snapshot path uses it to capture a graph consistent with the log.
func (e *Engine) WriteGraph(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return gio.WriteGraph(w, e.g)
}
func ReadGraph(r io.Reader) (*Graph, error)      { return gio.ReadGraph(r) }
func WritePattern(w io.Writer, p *Pattern) error { return gio.WritePattern(w, p) }
func ReadPattern(r io.Reader) (*Pattern, error)  { return gio.ReadPattern(r) }
func WriteUpdates(w io.Writer, u []Update) error { return gio.WriteUpdates(w, u) }
func ReadUpdates(r io.Reader) ([]Update, error)  { return gio.ReadUpdates(r) }

// LoadGraphFile reads a graph from a file in the text format.
func LoadGraphFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadGraph(f)
}

// LoadPatternFile reads a pattern from a file in the text format.
func LoadPatternFile(path string) (*Pattern, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPattern(f)
}

// GraphModel selects a synthetic topology for GenerateGraph.
type GraphModel = generator.Model

// Synthetic graph topologies.
const (
	ModelER             = generator.ER
	ModelPowerLaw       = generator.PowerLaw
	ModelCommunities    = generator.Communities
	ModelBarabasiAlbert = generator.BarabasiAlbert
)

// GraphGenConfig parameterises GenerateGraph.
type GraphGenConfig = generator.GraphConfig

// PatternGenConfig parameterises GeneratePattern.
type PatternGenConfig = generator.PatternConfig

// UpdateGenConfig parameterises GenerateUpdates.
type UpdateGenConfig = generator.UpdatesConfig

// GenerateGraph produces a synthetic data graph (deterministic per seed).
func GenerateGraph(cfg GraphGenConfig) *Graph { return generator.Graph(cfg) }

// GeneratePattern produces a pattern against g using the paper's
// walk-based generator (biased toward patterns that g matches).
func GeneratePattern(cfg PatternGenConfig, g *Graph) *Pattern { return generator.Pattern(cfg, g) }

// GenerateUpdates produces a valid random update batch for g without
// mutating it.
func GenerateUpdates(cfg UpdateGenConfig, g *Graph) []Update { return generator.Updates(cfg, g) }

// Dataset stand-ins reproducing the paper's evaluation graphs' exact
// sizes with schema-appropriate synthetic attributes (the originals are
// not redistributable; see DESIGN.md).
func DatasetMatter(seed int64) *Graph  { return datasets.Matter(seed) }
func DatasetPBlog(seed int64) *Graph   { return datasets.PBlog(seed) }
func DatasetYouTube(seed int64) *Graph { return datasets.YouTube(seed) }

// Dataset returns a stand-in by name ("matter", "pblog", "youtube"),
// scaled by factor (1.0 = the paper's exact |V| and |E|).
func Dataset(name string, seed int64, scale float64) (*Graph, error) {
	return datasets.ByName(name, seed, scale)
}
