package gpm_test

import (
	"bytes"
	"strings"
	"testing"

	"gpm"
)

// buildTriangle returns a small labeled graph A->B->C->A.
func buildTriangle() *gpm.Graph {
	g := gpm.NewGraph(0)
	for _, l := range []string{"A", "B", "C"} {
		g.AddNode(gpm.Attrs{"label": gpm.Str(l)})
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	return g
}

func TestPublicMatch(t *testing.T) {
	g := buildTriangle()
	p := gpm.NewPattern()
	a := p.AddNode(gpm.Label("A"))
	c := p.AddNode(gpm.Label("C"))
	p.MustAddEdge(a, c, 2)
	res, err := gpm.Match(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Pairs() != 2 {
		t.Fatalf("ok=%v pairs=%d", res.OK(), res.Pairs())
	}
	if got := res.Mat(c); len(got) != 1 || got[0] != 2 {
		t.Errorf("Mat(c) = %v", got)
	}
}

func TestPublicOracleVariants(t *testing.T) {
	g := buildTriangle()
	p := gpm.NewPattern()
	a := p.AddNode(gpm.Label("A"))
	b := p.AddNode(gpm.Label("B"))
	p.MustAddEdge(a, b, gpm.Unbounded)
	for name, f := range map[string]func(*gpm.Pattern, *gpm.Graph) (*gpm.Result, error){
		"match": gpm.Match, "bfs": gpm.MatchBFS, "2hop": gpm.Match2Hop,
	} {
		res, err := f(p, g)
		if err != nil || !res.OK() {
			t.Errorf("%s: ok=%v err=%v", name, res.OK(), err)
		}
	}
	for name, o := range map[string]gpm.DistOracle{
		"matrix": gpm.NewMatrixOracle(g), "bfs": gpm.NewBFSOracle(g), "2hop": gpm.NewTwoHopOracle(g),
	} {
		res, err := gpm.MatchWithOracle(p, g, o)
		if err != nil || !res.OK() {
			t.Errorf("oracle %s failed", name)
		}
	}
}

func TestPublicSimulateAndIso(t *testing.T) {
	g := buildTriangle()
	p := gpm.NewPattern()
	a := p.AddNode(gpm.Label("A"))
	b := p.AddNode(gpm.Label("B"))
	p.MustAddEdge(a, b, 1)
	rel, ok, err := gpm.Simulate(p, g)
	if err != nil || !ok || len(rel) != 2 {
		t.Fatalf("Simulate: %v %v %v", rel, ok, err)
	}
	if e := gpm.VF2(p, g, gpm.IsoOptions{}); len(e.Embeddings) != 1 {
		t.Errorf("VF2 embeddings = %d", len(e.Embeddings))
	}
	if e := gpm.Ullmann(p, g, gpm.IsoOptions{}); len(e.Embeddings) != 1 {
		t.Errorf("Ullmann embeddings = %d", len(e.Embeddings))
	}
}

func TestPublicIncremental(t *testing.T) {
	g := buildTriangle()
	p := gpm.NewPattern()
	a := p.AddNode(gpm.Label("A"))
	c := p.AddNode(gpm.Label("C"))
	p.MustAddEdge(a, c, 1)
	dm := gpm.NewDynamicMatrix(g)
	m, err := gpm.NewIncrementalMatcher(p, dm)
	if err != nil {
		t.Fatal(err)
	}
	if m.OK() {
		t.Fatal("A->C in one hop should not hold on the triangle")
	}
	delta, err := m.Apply([]gpm.Update{gpm.InsertEdge(0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if !m.OK() || len(delta.Added) == 0 {
		t.Errorf("insertion should create the match: %+v", delta)
	}
	delta, err = m.Apply([]gpm.Update{gpm.DeleteEdge(0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if m.OK() || len(delta.Removed) == 0 {
		t.Errorf("deletion should destroy the match: %+v", delta)
	}
}

func TestPublicIO(t *testing.T) {
	g := buildTriangle()
	var buf bytes.Buffer
	if err := gpm.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := gpm.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 3 || g2.M() != 3 {
		t.Error("graph round trip lost data")
	}
	p := gpm.NewPattern()
	p.AddNode(gpm.Label("A"))
	pred, err := gpm.ParsePredicate("views >= 700 && category = Music")
	if err != nil {
		t.Fatal(err)
	}
	p.AddNode(pred)
	p.MustAddEdge(0, 1, gpm.Unbounded)
	buf.Reset()
	if err := gpm.WritePattern(&buf, p); err != nil {
		t.Fatal(err)
	}
	p2, err := gpm.ReadPattern(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2.String() != p.String() {
		t.Errorf("pattern round trip: %q vs %q", p2.String(), p.String())
	}
	buf.Reset()
	ups := []gpm.Update{gpm.InsertEdge(0, 1), gpm.DeleteEdge(1, 2)}
	if err := gpm.WriteUpdates(&buf, ups); err != nil {
		t.Fatal(err)
	}
	ups2, err := gpm.ReadUpdates(&buf)
	if err != nil || len(ups2) != 2 {
		t.Errorf("updates round trip: %v %v", ups2, err)
	}
}

func TestPublicGeneratorsAndDatasets(t *testing.T) {
	g := gpm.GenerateGraph(gpm.GraphGenConfig{Nodes: 50, Edges: 120, Attrs: 5, Model: gpm.ModelPowerLaw, Seed: 3})
	if g.N() != 50 || g.M() != 120 {
		t.Fatalf("generated %d/%d", g.N(), g.M())
	}
	p := gpm.GeneratePattern(gpm.PatternGenConfig{Nodes: 3, Edges: 3, K: 3, Seed: 3}, g)
	if p.N() != 3 {
		t.Fatal("pattern size")
	}
	ups := gpm.GenerateUpdates(gpm.UpdateGenConfig{Insertions: 5, Deletions: 5, Seed: 3}, g)
	if len(ups) != 10 {
		t.Fatalf("updates = %d", len(ups))
	}
	ds, err := gpm.Dataset("matter", 1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if st := gpm.Stats(ds); st.Nodes == 0 || st.Edges == 0 {
		t.Error("empty dataset")
	}
	if _, err := gpm.Dataset("nope", 1, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestPublicResultGraph(t *testing.T) {
	g := buildTriangle()
	p := gpm.NewPattern()
	a := p.AddNode(gpm.Label("A"))
	c := p.AddNode(gpm.Label("C"))
	p.MustAddEdge(a, c, 2)
	o := gpm.NewMatrixOracle(g)
	res, _ := gpm.MatchWithOracle(p, g, o)
	rg := gpm.ResultGraphOf(res, o)
	n, e := rg.Size()
	if n != 2 || e != 1 {
		t.Errorf("result graph %d/%d", n, e)
	}
	if !strings.Contains(rg.String(), "path length 2") {
		t.Errorf("render: %s", rg.String())
	}
}

func TestDocExample(t *testing.T) {
	// The package-comment example, kept honest.
	g := gpm.NewGraph(3)
	g.SetAttr(0, gpm.Attrs{"label": gpm.Str("A")})
	g.SetAttr(1, gpm.Attrs{"label": gpm.Str("B")})
	g.SetAttr(2, gpm.Attrs{"label": gpm.Str("C")})
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	p := gpm.NewPattern()
	a := p.AddNode(gpm.Label("A"))
	c := p.AddNode(gpm.Label("C"))
	p.MustAddEdge(a, c, 2)
	res, err := gpm.Match(p, g)
	if err != nil || !res.OK() {
		t.Fatalf("doc example broken: %v %v", res, err)
	}
	if got := res.Mat(c); len(got) != 1 || got[0] != 2 {
		t.Errorf("doc example Mat = %v", got)
	}
}

func TestPublicRangeEdge(t *testing.T) {
	// The §6 "ranges on hops" extension: lower and upper walk bounds.
	g := gpm.NewGraph(0)
	a := g.AddNode(gpm.Attrs{"label": gpm.Str("A")})
	mid := g.AddNode(nil)
	b := g.AddNode(gpm.Attrs{"label": gpm.Str("B")})
	g.AddEdge(a, mid)
	g.AddEdge(mid, b)
	g.AddEdge(a, b) // direct edge, too short for the range

	p := gpm.NewPattern()
	pa := p.AddNode(gpm.Label("A"))
	pb := p.AddNode(gpm.Label("B"))
	if _, err := p.AddRangeEdge(pa, pb, 2, 4, ""); err != nil {
		t.Fatal(err)
	}
	res, err := gpm.Match(p, g)
	if err != nil || !res.OK() {
		t.Fatalf("range match: ok=%v err=%v", res.OK(), err)
	}
	g.RemoveEdge(mid, b)
	res, _ = gpm.Match(p, g)
	if res.OK() {
		t.Error("only the too-short direct edge remains; range must fail")
	}
	// Incremental matching declines ranged patterns explicitly.
	if _, err := gpm.NewIncrementalMatcher(p, gpm.NewDynamicMatrix(g.Clone())); err == nil {
		t.Error("incremental matcher should reject ranged patterns")
	}
}
