// Package gpm is a Go implementation of graph pattern matching via
// bounded simulation, reproducing "Graph Pattern Matching: From
// Intractable to Polynomial Time" (Fan, Li, Ma, Tang, Wu, Wu — PVLDB
// 3(1), 2010).
//
// Bounded simulation replaces the traditional subgraph-isomorphism
// semantics with (a) node predicates instead of label equality, (b)
// relations instead of bijections, and (c) pattern edges mapped to
// bounded paths instead of single edges — turning an NP-complete problem
// into a cubic-time one.
//
// The package exposes:
//
//   - Graph / Pattern construction ([NewGraph], [NewPattern]) with typed
//     attributes and predicate parsing;
//   - [Engine], the graph-bound, concurrency-safe query API: it caches
//     the distance oracle across queries and serves every matching
//     semantics — bounded simulation ([Engine.Match]), plain simulation
//     ([Engine.Simulate]), topology-preserving dual and strong
//     simulation ([Engine.DualSimulate], [Engine.StrongSimulate]),
//     subgraph-isomorphism enumeration ([Engine.Enumerate]) and
//     incremental matching ([Engine.Watch]);
//   - the flat per-call entry points the Engine supersedes ([Match],
//     [Simulate], [VF2], …), kept as deprecated wrappers;
//   - synthetic generators and dataset stand-ins used by the experiment
//     harness (see cmd/gpmbench and EXPERIMENTS.md).
//
// A minimal session:
//
//	g := gpm.NewGraph(3)
//	g.SetAttr(0, gpm.Attrs{"label": gpm.Str("A")})
//	g.SetAttr(1, gpm.Attrs{"label": gpm.Str("B")})
//	g.SetAttr(2, gpm.Attrs{"label": gpm.Str("C")})
//	g.AddEdge(0, 1)
//	g.AddEdge(1, 2)
//
//	p := gpm.NewPattern()
//	a := p.AddNode(gpm.Label("A"))
//	c := p.AddNode(gpm.Label("C"))
//	p.MustAddEdge(a, c, 2) // "C reachable from A within 2 hops"
//
//	eng := gpm.NewEngine(g)
//	res, err := eng.Match(context.Background(), p)
//	// res.OK() == true; res.Mat(c) == [2]
//
// See README.md for the Engine API and the text formats the command-line
// tools read and write.
package gpm

import (
	"context"

	"gpm/internal/core"
	"gpm/internal/graph"
	"gpm/internal/incremental"
	"gpm/internal/pattern"
	"gpm/internal/plan"
	"gpm/internal/simulation"
	"gpm/internal/subiso"
	"gpm/internal/topo"
	"gpm/internal/value"
)

// Re-exported construction types. The aliases expose the full method sets
// of the internal implementations as public API.
type (
	// Graph is a directed data graph with attributed nodes and optional
	// edge colors.
	Graph = graph.Graph
	// Attrs is a node's attribute tuple.
	Attrs = value.Tuple
	// Value is a typed attribute constant (int, float or string).
	Value = value.Value
	// Op is a predicate comparison operator.
	Op = value.Op

	// Pattern is a pattern graph: predicates on nodes, bounds on edges.
	Pattern = pattern.Pattern
	// Predicate is a conjunction of attribute comparisons.
	Predicate = pattern.Predicate
	// Atom is a single comparison "attr op value".
	Atom = pattern.Atom
	// PatternEdge describes one pattern edge (bound, optional color).
	PatternEdge = pattern.Edge

	// Result is a (maximum) bounded-simulation match.
	Result = core.Result
	// ResultGraph is the succinct graph representation of a match.
	ResultGraph = core.ResultGraph
	// ResultEdge is one result-graph edge with its witness length.
	ResultEdge = core.ResultEdge
	// DistOracle answers bounded nonempty-path distance queries.
	DistOracle = core.DistOracle

	// Update is an edge insertion or deletion.
	Update = incremental.Update
	// UpdateDelta reports the effect of an update batch on a match.
	UpdateDelta = incremental.Delta
	// MatchPair is one (pattern node, data node) element of a match delta.
	MatchPair = incremental.MatchPair
	// IncrementalMatcher maintains a match under updates.
	IncrementalMatcher = incremental.Matcher
	// DynamicMatrix maintains a distance matrix under updates.
	DynamicMatrix = incremental.DynMatrix

	// Enumeration is the outcome of a subgraph-isomorphism search.
	Enumeration = subiso.Enumeration
	// IsoOptions bounds subgraph-isomorphism enumeration.
	IsoOptions = subiso.Options
	// EnumAlgo selects the enumeration algorithm in IsoOptions.Algo.
	EnumAlgo = subiso.Algo
	// EnumPlan is the query plan Engine.Enumerate runs under by default:
	// cost-modelled matching order, symmetry-breaking restrictions, and
	// the pattern's automorphism group (see Engine.EnumerationPlan).
	EnumPlan = plan.Plan
)

// Enumeration algorithms for IsoOptions.Algo.
const (
	AlgoVF2     = subiso.AlgoVF2
	AlgoUllmann = subiso.AlgoUllmann
)

// Comparison operators for building predicates programmatically.
const (
	OpLT = value.OpLT
	OpLE = value.OpLE
	OpEQ = value.OpEQ
	OpNE = value.OpNE
	OpGT = value.OpGT
	OpGE = value.OpGE
)

// Unbounded is the pattern edge bound "*": any positive path length.
const Unbounded = pattern.Unbounded

// NewGraph returns a data graph with n attribute-less nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewPattern returns an empty pattern graph.
func NewPattern() *Pattern { return pattern.New() }

// Int, Float and Str build attribute values.
func Int(i int64) Value     { return value.Int(i) }
func Float(f float64) Value { return value.Float(f) }
func Str(s string) Value    { return value.Str(s) }

// Label returns the predicate "label = name", the traditional labeled
// pattern node.
func Label(name string) Predicate { return pattern.Label(name) }

// ParsePredicate parses predicate surface syntax such as
// "category = Music && rate > 3" (see the pattern format in README).
func ParsePredicate(s string) (Predicate, error) { return pattern.ParsePredicate(s) }

// Match computes the unique maximum match of p in g via bounded
// simulation (the paper's cubic-time algorithm Match, Fig. 4). It builds
// a distance matrix of g on every call.
//
// Deprecated: bind the graph once with [NewEngine] and use
// [Engine.Match], which caches the oracle across queries, is safe for
// concurrent use, and supports cancellation.
func Match(p *Pattern, g *Graph) (*Result, error) { return core.Match(p, g) }

// MatchBFS is Match computing distances by (cached) BFS instead of a
// matrix: no preprocessing and O(|V|) memory, slower queries — the "BFS"
// variant of the paper's Exp-2.
//
// Deprecated: use [NewEngine] with WithOracle(OracleBFS) and
// [Engine.Match].
func MatchBFS(p *Pattern, g *Graph) (*Result, error) { return core.MatchBFS(p, g) }

// Match2Hop is Match with a 2-hop reachability labelling filtering BFS
// distance queries — the "2-hop" variant of the paper's Exp-2.
//
// Deprecated: use [NewEngine] with WithOracle(OracleTwoHop) and
// [Engine.Match].
func Match2Hop(p *Pattern, g *Graph) (*Result, error) { return core.Match2Hop(p, g) }

// MatchWithOracle runs the matching fixpoint against a caller-supplied
// distance oracle.
//
// Deprecated: use [NewEngine], which owns oracle construction and
// caching; MatchWithOracle remains for callers plugging in a custom
// [DistOracle] implementation.
func MatchWithOracle(p *Pattern, g *Graph, o DistOracle) (*Result, error) {
	return core.MatchWithOracle(p, g, o)
}

// NewMatrixOracle precomputes the all-pairs distance matrix of g once, so
// many patterns can be matched against the same graph without paying the
// O(|V|(|V|+|E|)) preprocessing per pattern.
//
// Deprecated: [NewEngine] builds and caches this oracle internally.
func NewMatrixOracle(g *Graph) DistOracle { return core.BuildMatrixOracle(g) }

// NewBFSOracle returns the no-preprocessing BFS oracle for g.
//
// Deprecated: use [NewEngine] with WithOracle(OracleBFS).
func NewBFSOracle(g *Graph) DistOracle { return core.NewBFSOracle(g) }

// NewTwoHopOracle builds a 2-hop reachability labelling over g and wraps
// it as a distance oracle.
//
// Deprecated: use [NewEngine] with WithOracle(OracleTwoHop).
func NewTwoHopOracle(g *Graph) DistOracle { return core.BuildTwoHopOracle(g) }

// ResultGraphOf materialises the result graph of a match (§2.2 of the
// paper): nodes are matched data nodes; each edge records which pattern
// edge it realises and the witness path length.
//
// Deprecated: use [Engine.ResultGraph], which reuses the engine's cached
// oracle.
func ResultGraphOf(res *Result, o DistOracle) *ResultGraph {
	return core.BuildResultGraph(res, o)
}

// Simulate computes plain graph simulation (every pattern edge bound must
// be 1): the special case the paper extends. Returns the per-pattern-node
// match lists and whether every pattern node matched.
//
// Deprecated: use [Engine.Simulate].
func Simulate(p *Pattern, g *Graph) ([][]int32, bool, error) { return simulation.Run(p, g) }

// DualSimulate computes the maximum dual simulation of p in g (every
// pattern edge bound must be 1): plain simulation extended with parent
// constraints, preserving both child and parent topology (Ma et al.,
// "Capturing Topology in Graph Pattern Matching", VLDB 2012). The
// returned relation lists, per pattern node, the sorted data nodes that
// dual-simulate it; ok reports whether every pattern node matched. It
// freezes g on every call; bind the graph once with [NewEngine] and use
// [Engine.DualSimulate] for repeated queries.
func DualSimulate(p *Pattern, g *Graph) (rel [][]int32, ok bool, err error) {
	return topo.DualSim(context.Background(), p, g.Freeze(), topo.Options{})
}

// StrongSimulate computes strong simulation of p in g (every pattern
// edge bound must be 1): dual simulation inside diameter-bounded balls
// with maximum-perfect-subgraph filtering — the strictest cubic-time
// semantics the package serves (Ma et al., VLDB 2012). It freezes g on
// every call; bind the graph once with [NewEngine] and use
// [Engine.StrongSimulate] for repeated (and parallel) queries.
func StrongSimulate(p *Pattern, g *Graph) (rel [][]int32, ok bool, err error) {
	return topo.StrongSim(context.Background(), p, g.Freeze(), topo.Options{})
}

// VF2 enumerates subgraph-isomorphism embeddings of p in g (edge-to-edge
// semantics) — the baseline the paper compares against in Exp-1.
//
// Deprecated: use [Engine.Enumerate] (AlgoVF2 is the default).
func VF2(p *Pattern, g *Graph, opts IsoOptions) *Enumeration { return subiso.VF2(p, g, opts) }

// Ullmann is the Ullmann-style enumeration (the paper's "SubIso").
//
// Deprecated: use [Engine.Enumerate] with IsoOptions.Algo = AlgoUllmann.
func Ullmann(p *Pattern, g *Graph, opts IsoOptions) *Enumeration { return subiso.Ullmann(p, g, opts) }

// NewDynamicMatrix wraps g with an incrementally maintained distance
// matrix (the paper's UpdateM / UpdateBM procedures). The graph must be
// mutated only through the returned matrix.
//
// Deprecated: [Engine.Watch] and [Engine.Update] maintain a shared
// DynamicMatrix internally.
func NewDynamicMatrix(g *Graph) *DynamicMatrix { return incremental.NewDynMatrix(g) }

// NewIncrementalMatcher computes the initial maximum match of p over dm's
// graph and maintains it under dm.Apply-style updates (the paper's
// IncMatch with the Match⁻/Match⁺ cascades). Multiple matchers may share
// one DynamicMatrix only if their updates are applied through exactly one
// of them; otherwise give each its own.
//
// Deprecated: use [Engine.Watch], which lets many watchers share one
// maintained matrix safely.
func NewIncrementalMatcher(p *Pattern, dm *DynamicMatrix) (*IncrementalMatcher, error) {
	return incremental.NewMatcher(p, dm)
}

// InsertEdge and DeleteEdge build updates for IncrementalMatcher.Apply.
func InsertEdge(u, v int) Update { return incremental.Ins(u, v) }
func DeleteEdge(u, v int) Update { return incremental.Del(u, v) }
