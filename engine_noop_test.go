package gpm

import (
	"context"
	"testing"
)

// noopTestEngine builds a small engine and forces its lazy caches into
// existence.
func noopTestEngine(t *testing.T, opts ...EngineOption) (*Engine, *Pattern) {
	t.Helper()
	g := NewGraph(4)
	for i := 0; i < 4; i++ {
		g.SetAttr(i, Attrs{"label": Str("A")})
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	p := NewPattern()
	a := p.AddNode(Label("A"))
	b := p.AddNode(Label("A"))
	p.MustAddEdge(a, b, 1)
	e := NewEngine(g, opts...)
	if _, err := e.Match(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	return e, p
}

// Regression: Update used to drop the cached frozen snapshot (and 2-hop
// labelling) wholesale even when the batch had no net structural effect
// — an empty batch, or an insert-then-delete of the same edge. No-op
// batches must keep the caches so the next query skips the rebuild.
func TestUpdateNoopKeepsCaches(t *testing.T) {
	e, _ := noopTestEngine(t)
	fz := e.fz.Load()
	if fz == nil {
		t.Fatal("Match did not populate the frozen snapshot")
	}

	if _, err := e.Update(); err != nil {
		t.Fatal(err)
	}
	if e.fz.Load() != fz {
		t.Error("empty Update batch dropped the frozen snapshot")
	}

	if _, err := e.Update(InsertEdge(0, 2), DeleteEdge(0, 2)); err != nil {
		t.Fatal(err)
	}
	if e.fz.Load() != fz {
		t.Error("insert-then-delete Update batch dropped the frozen snapshot")
	}

	// A real change must still invalidate.
	if _, err := e.Update(InsertEdge(0, 3)); err != nil {
		t.Fatal(err)
	}
	if e.fz.Load() == fz {
		t.Error("net-effective Update batch kept a stale frozen snapshot")
	}
}

// The same retention must hold for the 2-hop labelling, which is much
// more expensive to rebuild than the snapshot.
func TestUpdateNoopKeepsTwoHopIndex(t *testing.T) {
	e, p := noopTestEngine(t, WithOracle(OracleTwoHop))
	if _, err := e.Match(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	idx := e.idx.Load()
	if idx == nil {
		t.Fatal("Match did not populate the 2-hop labelling")
	}
	if _, err := e.Update(InsertEdge(0, 2), DeleteEdge(0, 2), InsertEdge(3, 0), DeleteEdge(3, 0)); err != nil {
		t.Fatal(err)
	}
	if e.idx.Load() != idx {
		t.Error("no-op Update batch dropped the 2-hop labelling")
	}
	if _, err := e.Update(InsertEdge(3, 0)); err != nil {
		t.Fatal(err)
	}
	if e.idx.Load() != nil {
		t.Error("net-effective Update batch kept a stale 2-hop labelling")
	}
}

// The same retention must hold for the PLL labelling — the most
// expensive cache the engine keeps.
func TestUpdateNoopKeepsPLLIndex(t *testing.T) {
	e, p := noopTestEngine(t, WithOracle(OraclePLL))
	if _, err := e.Match(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	po := e.po.Load()
	if po == nil {
		t.Fatal("Match did not populate the PLL oracle")
	}
	if _, err := e.Update(InsertEdge(0, 2), DeleteEdge(0, 2), InsertEdge(3, 0), DeleteEdge(3, 0)); err != nil {
		t.Fatal(err)
	}
	if e.po.Load() != po {
		t.Error("no-op Update batch dropped the PLL labelling")
	}
	if _, err := e.Update(InsertEdge(3, 0)); err != nil {
		t.Fatal(err)
	}
	if e.po.Load() != nil {
		t.Error("net-effective Update batch kept a stale PLL labelling")
	}
}

// TestUpdateInvalidationUniform audits every cached oracle kind the same
// way: after a net-effective Update, queries (plain and colored) must
// agree with a fresh engine over the mutated graph — no oracle may serve
// stale distances. This pins the invalidation sweep in Engine.Update
// against the cache set growing out of sync with it.
func TestUpdateInvalidationUniform(t *testing.T) {
	kinds := []OracleKind{OracleMatrix, OracleBFS, OracleTwoHop, OraclePLL}
	build := func() *Graph {
		g := NewGraph(6)
		for i := 0; i < 6; i++ {
			g.SetAttr(i, Attrs{"label": Str("A")})
		}
		g.AddColoredEdge(0, 1, "c")
		g.AddColoredEdge(1, 2, "c")
		g.AddEdge(2, 3)
		g.AddEdge(3, 4)
		return g
	}
	plain := NewPattern()
	pa := plain.AddNode(Label("A"))
	pb := plain.AddNode(Label("A"))
	plain.MustAddEdge(pa, pb, 3)
	colored := NewPattern()
	ca := colored.AddNode(Label("A"))
	cb := colored.AddNode(Label("A"))
	if _, err := colored.AddColoredEdge(ca, cb, 2, "c"); err != nil {
		t.Fatal(err)
	}
	for _, kind := range kinds {
		e := NewEngine(build(), WithOracle(kind))
		// Populate every lazy cache this kind owns, color sublabels
		// included.
		for _, p := range []*Pattern{plain, colored} {
			if _, err := e.Match(context.Background(), p); err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
		}
		if _, err := e.Update(InsertEdge(4, 5), InsertEdge(5, 0), DeleteEdge(1, 2)); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		fresh := NewEngine(build(), WithOracle(kind))
		if _, err := fresh.Update(InsertEdge(4, 5), InsertEdge(5, 0), DeleteEdge(1, 2)); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for name, p := range map[string]*Pattern{"plain": plain, "colored": colored} {
			got, err := e.Match(context.Background(), p)
			if err != nil {
				t.Fatalf("%v/%s: %v", kind, name, err)
			}
			want, err := fresh.Match(context.Background(), p)
			if err != nil {
				t.Fatalf("%v/%s: %v", kind, name, err)
			}
			if got.OK() != want.OK() {
				t.Errorf("%v/%s: stale OK %v, fresh %v", kind, name, got.OK(), want.OK())
				continue
			}
			for u := 0; u < p.N(); u++ {
				gm, wm := got.Mat(u), want.Mat(u)
				if len(gm) != len(wm) {
					t.Errorf("%v/%s: node %d relation diverged after Update", kind, name, u)
					break
				}
				for i := range gm {
					if gm[i] != wm[i] {
						t.Errorf("%v/%s: node %d relation diverged after Update", kind, name, u)
						break
					}
				}
			}
		}
	}
}

// A delete-then-reinsert of the same edge is conservatively treated as a
// change: the original edge may have carried a color the re-inserted one
// lost, so the frozen snapshot (which copies colors) must be rebuilt.
func TestUpdateDeleteReinsertInvalidates(t *testing.T) {
	e, _ := noopTestEngine(t)
	fz := e.fz.Load()
	if _, err := e.Update(DeleteEdge(0, 1), InsertEdge(0, 1)); err != nil {
		t.Fatal(err)
	}
	if e.fz.Load() == fz {
		t.Error("delete-then-reinsert batch kept a possibly stale frozen snapshot")
	}
}
